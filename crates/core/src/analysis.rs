//! Theoretical analysis of the Approximate Bitmap (paper §4).
//!
//! Notation (Table 2): `N` rows, `d` attributes, `s` set bits, `k` hash
//! functions, `n` AB size in bits, `m = log2 n`, `α = n / s` the space
//! multiplier. The central results:
//!
//! * false-positive rate `FP(k, α) = (1 − e^{−k/α})^k` (§4.1),
//! * precision `P = 1 − FP` (§4.2),
//! * the optimal `k` minimizing FP for a given `α` is `α · ln 2`,
//! * the `α` achieving a minimum precision for a given `k` is
//!   `α = −k / ln(1 − e^{ln(1−P)/k})`,
//! * AB sizes are rounded up to powers of two: `m = ⌈log2(s·α)⌉` (§4.2,
//!   §6.1), and
//! * the §4.2 size comparisons decide which encoding level (per data
//!   set / per attribute / per column) is smallest.

use serde::{Deserialize, Serialize};

/// The resolution at which ABs are built (paper contribution 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// One AB encodes the whole bitmap table (`s = d·N`). Size is
    /// independent of dimensionality — best for high-dimensional data.
    PerDataset,
    /// One AB per attribute (`s = N` each). Size independent of the
    /// attribute cardinalities.
    PerAttribute,
    /// One AB per bitmap column (`s` = rows in that bin). Size depends
    /// only on the set-bit counts — best for uniform data.
    PerColumn,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Level::PerDataset => write!(f, "per-dataset"),
            Level::PerAttribute => write!(f, "per-attribute"),
            Level::PerColumn => write!(f, "per-column"),
        }
    }
}

/// False-positive rate `(1 − e^{−k/α})^k` of an AB with `k` hash
/// functions and `α` bits per set bit (§4.1).
///
/// # Panics
///
/// Panics if `k == 0` or `alpha <= 0`.
pub fn fp_rate(k: usize, alpha: f64) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!(alpha > 0.0, "alpha must be positive");
    (1.0 - (-(k as f64) / alpha).exp()).powi(k as i32)
}

/// Exact (non-asymptotic) false-positive rate
/// `(1 − (1 − 1/n)^{k·s})^k` for `s` insertions into `n` bits.
pub fn fp_rate_exact(k: usize, n: u64, s: u64) -> f64 {
    assert!(k > 0 && n > 0, "k and n must be positive");
    let base = 1.0 - 1.0 / n as f64;
    (1.0 - base.powf((k as u64 * s) as f64)).powi(k as i32)
}

/// Precision `P = 1 − FP(k, α)` (§4.2).
pub fn precision(k: usize, alpha: f64) -> f64 {
    1.0 - fp_rate(k, alpha)
}

/// The number of hash functions minimizing the false-positive rate for
/// a given `α`: the integer neighbour of `α · ln 2` with the lower FP
/// (§4.1, Figure 9).
pub fn optimal_k(alpha: f64) -> usize {
    assert!(alpha > 0.0, "alpha must be positive");
    let ideal = alpha * std::f64::consts::LN_2;
    let lo = (ideal.floor() as usize).max(1);
    let hi = lo + 1;
    if fp_rate(lo, alpha) <= fp_rate(hi, alpha) {
        lo
    } else {
        hi
    }
}

/// The space multiplier `α` required to reach precision `p_min` with
/// `k` hash functions: `α = −k / ln(1 − e^{ln(1−p_min)/k})` (§4.2).
///
/// # Panics
///
/// Panics unless `0 < p_min < 1` and `k > 0`.
pub fn alpha_for_precision(p_min: f64, k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!(
        p_min > 0.0 && p_min < 1.0,
        "precision must be in (0, 1), got {p_min}"
    );
    let inner = 1.0 - ((1.0 - p_min).ln() / k as f64).exp();
    -(k as f64) / inner.ln()
}

/// Smallest power of two ≥ `x` (≥ 1).
pub fn next_pow2(x: u64) -> u64 {
    x.max(1).next_power_of_two()
}

/// AB size in bits for `s` set bits and multiplier `alpha`: the lowest
/// power of two ≥ `s·α`, i.e. `2^m` with `m = ⌈log2(s·α)⌉` (§4.2).
pub fn ab_bits(s: u64, alpha: u64) -> u64 {
    next_pow2(s.saturating_mul(alpha))
}

/// AB size in bytes (see [`ab_bits`]).
pub fn ab_size_bytes(s: u64, alpha: u64) -> u64 {
    ab_bits(s, alpha) / 8
}

/// Parameters chosen for one AB: its size and hash count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbParams {
    /// AB size in bits (a power of two under the paper's sizing).
    pub n_bits: u64,
    /// Number of hash functions.
    pub k: usize,
}

impl AbParams {
    /// Effective `α = n / s` for `s` set bits.
    pub fn alpha(&self, s: u64) -> f64 {
        self.n_bits as f64 / s.max(1) as f64
    }

    /// Theoretical precision for `s` set bits.
    pub fn expected_precision(&self, s: u64) -> f64 {
        1.0 - fp_rate_exact(self.k, self.n_bits, s)
    }
}

/// Sizing mode 1 (paper contribution 3): given a maximum size `2^m_max`
/// bits, build the largest AB that fits and the `k` that maximizes
/// precision for the resulting `α`.
pub fn params_for_max_size(s: u64, m_max: u32) -> AbParams {
    assert!(m_max < 63, "m_max {m_max} too large");
    let n_bits = 1u64 << m_max;
    let alpha = n_bits as f64 / s.max(1) as f64;
    AbParams {
        n_bits,
        k: optimal_k(alpha),
    }
}

/// Sizing mode 2 (paper contribution 3): given a minimum precision,
/// find the `(n, k)` pair using the least space (searching `k` over a
/// practical range and rounding `n` up to a power of two).
pub fn params_for_min_precision(s: u64, p_min: f64) -> AbParams {
    let mut best: Option<AbParams> = None;
    for k in 1..=32usize {
        let alpha = alpha_for_precision(p_min, k);
        let n_bits = next_pow2((alpha * s.max(1) as f64).ceil() as u64);
        // Rounding up to a power of two may allow a better k for the
        // actual α; re-optimize but verify precision still holds.
        let actual_alpha = n_bits as f64 / s.max(1) as f64;
        let k_opt = optimal_k(actual_alpha);
        let k_use = if precision(k_opt, actual_alpha) >= p_min {
            k_opt
        } else {
            k
        };
        if precision(k_use, actual_alpha) < p_min {
            continue;
        }
        let cand = AbParams { n_bits, k: k_use };
        best = match best {
            None => Some(cand),
            Some(b) if cand.n_bits < b.n_bits || (cand.n_bits == b.n_bits && cand.k < b.k) => {
                Some(cand)
            }
            b => b,
        };
    }
    best.expect("a satisfying (n, k) always exists for p_min < 1")
}

/// Total AB bytes at each level for a data set with `num_rows` rows,
/// `num_attributes` attributes, per-column set-bit counts
/// `column_set_bits` (one entry per bitmap column across all
/// attributes), and multiplier `alpha` (§4.2, Tables 4–6).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelSizes {
    /// Bytes for one AB over the whole data set.
    pub per_dataset: u64,
    /// Total bytes for one AB per attribute.
    pub per_attribute: u64,
    /// Total bytes for one AB per column.
    pub per_column: u64,
}

/// Computes the §4.2 size comparison across levels.
pub fn level_sizes(
    num_rows: u64,
    num_attributes: u64,
    column_set_bits: &[u64],
    alpha: u64,
) -> LevelSizes {
    let per_dataset = ab_size_bytes(num_rows * num_attributes, alpha);
    let per_attribute = num_attributes * ab_size_bytes(num_rows, alpha);
    let per_column = column_set_bits
        .iter()
        .map(|&s| ab_size_bytes(s, alpha))
        .sum();
    LevelSizes {
        per_dataset,
        per_attribute,
        per_column,
    }
}

/// Picks the smallest-footprint level per the §4.2 comparisons. Ties
/// prefer coarser levels (fewer ABs to manage).
pub fn choose_level(sizes: &LevelSizes) -> Level {
    let mut best = (Level::PerDataset, sizes.per_dataset);
    if sizes.per_attribute < best.1 {
        best = (Level::PerAttribute, sizes.per_attribute);
    }
    if sizes.per_column < best.1 {
        best = (Level::PerColumn, sizes.per_column);
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_rate_known_values() {
        // α = 8, k = 5: classic Bloom numbers ≈ 0.0217.
        let fp = fp_rate(5, 8.0);
        assert!((fp - 0.0217).abs() < 0.001, "fp = {fp}");
        // α = 2, k = 1: 1 - e^{-1/2} ≈ 0.3935.
        assert!((fp_rate(1, 2.0) - 0.3935).abs() < 0.001);
    }

    #[test]
    fn fp_rate_decreases_with_alpha() {
        // Figure 8: FP falls as α grows, for every k.
        for k in 1..=8 {
            let mut prev = 1.0;
            for alpha in [2.0, 4.0, 8.0, 16.0, 32.0] {
                let fp = fp_rate(k, alpha);
                assert!(fp < prev, "k={k} α={alpha}");
                prev = fp;
            }
        }
    }

    #[test]
    fn fp_rate_u_shaped_in_k() {
        // Figure 9: for fixed α, FP falls to a minimum then rises.
        let alpha = 8.0;
        let kopt = optimal_k(alpha);
        assert!(fp_rate(kopt, alpha) <= fp_rate(1, alpha));
        assert!(fp_rate(kopt, alpha) <= fp_rate(20, alpha));
    }

    #[test]
    fn optimal_k_is_alpha_ln2() {
        assert_eq!(optimal_k(8.0), 6); // 8 ln2 ≈ 5.55 → 6 beats 5
        assert_eq!(optimal_k(16.0), 11); // 16 ln2 ≈ 11.09
        assert_eq!(optimal_k(1.0), 1);
        // Optimality: neighbours are no better.
        for alpha in [2.0, 4.0, 8.0, 16.0, 23.0] {
            let k = optimal_k(alpha);
            let best = fp_rate(k, alpha);
            if k > 1 {
                assert!(best <= fp_rate(k - 1, alpha) + 1e-15, "α={alpha}");
            }
            assert!(best <= fp_rate(k + 1, alpha) + 1e-15, "α={alpha}");
        }
    }

    #[test]
    fn alpha_for_precision_inverts_fp() {
        for &(p, k) in &[(0.9, 4), (0.95, 5), (0.99, 7), (0.5, 2)] {
            let alpha = alpha_for_precision(p, k);
            let achieved = precision(k, alpha);
            assert!(
                (achieved - p).abs() < 1e-9,
                "p={p} k={k}: α={alpha} gives {achieved}"
            );
        }
    }

    #[test]
    fn fp_exact_approaches_asymptotic() {
        let s = 100_000u64;
        let alpha = 8u64;
        let n = s * alpha;
        let k = 5;
        let exact = fp_rate_exact(k, n, s);
        let asym = fp_rate(k, alpha as f64);
        assert!((exact - asym).abs() < 1e-4, "{exact} vs {asym}");
    }

    #[test]
    fn ab_bits_rounds_to_power_of_two() {
        // Landsat, α = 4 (paper §6.1): s = 16,527,900 → 67,108,864 bits
        // = 8,388,608 bytes.
        assert_eq!(ab_bits(16_527_900, 4), 67_108_864);
        assert_eq!(ab_size_bytes(16_527_900, 4), 8_388_608);
        // Uniform per-attribute, α = 2: s = 100,000 → 262,144 bits =
        // 32,768 bytes (Table 5).
        assert_eq!(ab_size_bytes(100_000, 2), 32_768);
        // HEP per-attribute, α = 2: s = 2,173,762 → 1,048,576 bytes.
        assert_eq!(ab_size_bytes(2_173_762, 2), 1_048_576);
    }

    #[test]
    fn params_for_max_size_uses_whole_budget() {
        let p = params_for_max_size(100_000, 20);
        assert_eq!(p.n_bits, 1 << 20);
        // α ≈ 10.5 → k ≈ 7.
        assert_eq!(p.k, optimal_k((1u64 << 20) as f64 / 100_000.0));
    }

    #[test]
    fn params_for_min_precision_achieves_target() {
        for p_min in [0.8, 0.9, 0.95, 0.99] {
            let params = params_for_min_precision(50_000, p_min);
            let achieved = params.expected_precision(50_000);
            assert!(
                achieved >= p_min - 1e-6,
                "target {p_min}: got {achieved} with {params:?}"
            );
        }
    }

    #[test]
    fn params_for_min_precision_is_minimal_pow2() {
        // Halving the chosen size must break the target for every k in
        // the search range.
        let p_min = 0.95;
        let s = 50_000;
        let params = params_for_min_precision(s, p_min);
        let smaller = params.n_bits / 2;
        for k in 1..=32usize {
            let alpha = smaller as f64 / s as f64;
            assert!(
                precision(k, alpha) < p_min,
                "smaller AB would satisfy target with k={k}"
            );
        }
    }

    #[test]
    fn level_sizes_match_paper_tables() {
        // Uniform data set (Table 3): N = 100,000, d = 2, 100 columns
        // of 2,000 set bits each (uniform). α = 4.
        let cols = vec![2_000u64; 100];
        let sizes = level_sizes(100_000, 2, &cols, 4);
        // Table 4: per data set, α=4 → 131,072 bytes.
        assert_eq!(sizes.per_dataset, 131_072);
        // Table 5: per attribute, α=4 → 2 × 65,536 = 131,072 bytes.
        assert_eq!(sizes.per_attribute, 131_072);
        // Table 6: per column, α=4 → 100 × 1,024 = 102,400 bytes.
        assert_eq!(sizes.per_column, 102_400);
        assert_eq!(choose_level(&sizes), Level::PerColumn);
    }

    #[test]
    fn high_dimensional_prefers_per_dataset() {
        // Landsat-like: d = 60; per-attribute pays the power-of-two
        // round-up 60 times.
        let cols = vec![275_465u64 / 15; 900];
        let sizes = level_sizes(275_465, 60, &cols, 8);
        let picked = choose_level(&sizes);
        assert_eq!(picked, Level::PerDataset, "sizes: {sizes:?}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn fp_rate_rejects_zero_k() {
        fp_rate(0, 8.0);
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn alpha_for_precision_rejects_p_one() {
        alpha_for_precision(1.0, 3);
    }

    #[test]
    fn next_pow2_cases() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }
}
