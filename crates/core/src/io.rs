//! Persistent binary format for AB indexes.
//!
//! A downstream user builds the AB once over a (read-only, per §4.1)
//! data set and ships it to query nodes — the paper's privacy scenario
//! (§1, contribution 6) even queries the AB *without* database access.
//! The format is a versioned little-endian layout:
//!
//! ```text
//! magic "ABIX" | version u16 | level u8 | num_rows u64 |
//! attr count u32 | { name_len u16, name, cardinality u32, offset u64 }* |
//! ab count u32  | { n_bits u64, k u32, inserted u64, mapper, family,
//!                   word count u64, words u64* }*
//! ```
//!
//! A row-range-sharded index (see `ab::shard_ranges` and the `svc`
//! crate) persists as an `ABSH` envelope of independent `ABIX`
//! segments, each tagged with its starting global row:
//!
//! ```text
//! magic "ABSH" | version u16 | shard count u32 |
//! { start_row u64, byte_len u64, ABIX bytes }*
//! ```
//!
//! Segments are length-prefixed so a reader can skip to any shard
//! without decoding the others, and must appear in strictly increasing
//! `start_row` order starting at row 0.

use crate::analysis::Level;
use crate::encoding::ApproximateBitmap;
use crate::level::{AbIndex, AttributeMeta};
use bitmap::BitVec;
use hashkit::{CellMapper, HashFamily, HashKind};

/// Errors arising while decoding a serialized AB index.
#[derive(Debug, PartialEq, Eq)]
pub enum IoError {
    /// Input does not start with the `ABIX` magic.
    BadMagic,
    /// Format version not understood by this build.
    UnsupportedVersion(u16),
    /// Input ended before a field completed.
    Truncated,
    /// A tag byte had no defined meaning.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadString,
    /// `ABSH` shard segments were empty, unordered, or overlapping.
    BadShardLayout,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::BadMagic => write!(f, "not an AB index (bad magic)"),
            IoError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            IoError::Truncated => write!(f, "truncated input"),
            IoError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            IoError::BadString => write!(f, "invalid UTF-8 in name"),
            IoError::BadShardLayout => write!(f, "shard segments empty or out of order"),
        }
    }
}

impl std::error::Error for IoError {}

const MAGIC: &[u8; 4] = b"ABIX";
const VERSION: u16 = 1;

/// Serializes an [`AbIndex`] to bytes.
pub fn to_bytes(index: &AbIndex) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + index.size_bytes());
    out.extend_from_slice(MAGIC);
    put_u16(&mut out, VERSION);
    out.push(level_tag(index.level()));
    put_u64(&mut out, index.num_rows() as u64);
    put_u32(&mut out, index.attributes().len() as u32);
    for a in index.attributes() {
        put_u16(&mut out, a.name.len() as u16);
        out.extend_from_slice(a.name.as_bytes());
        put_u32(&mut out, a.cardinality);
        put_u64(&mut out, a.offset as u64);
    }
    put_u32(&mut out, index.abs().len() as u32);
    for ab in index.abs() {
        put_u64(&mut out, ab.n_bits());
        put_u32(&mut out, ab.k() as u32);
        put_u64(&mut out, ab.inserted());
        write_mapper(&mut out, ab.mapper());
        write_family(&mut out, ab.family());
        let words = ab.bits().words();
        put_u64(&mut out, words.len() as u64);
        for &w in words {
            put_u64(&mut out, w);
        }
    }
    out
}

/// Deserializes an [`AbIndex`] from bytes produced by [`to_bytes`].
pub fn from_bytes(data: &[u8]) -> Result<AbIndex, IoError> {
    let mut r = Reader { data, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(IoError::UnsupportedVersion(version));
    }
    let level = parse_level(r.u8()?)?;
    let num_rows = r.u64()? as usize;
    let attr_count = r.u32()? as usize;
    // Each attribute record is at least 14 bytes; a count beyond the
    // remaining input is corrupt. Checking before the reserve keeps a
    // hostile header from forcing a huge allocation.
    if attr_count > r.remaining() / 14 {
        return Err(IoError::Truncated);
    }
    let mut attributes = Vec::with_capacity(attr_count);
    for _ in 0..attr_count {
        let name_len = r.u16()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| IoError::BadString)?
            .to_owned();
        let cardinality = r.u32()?;
        let offset = r.u64()? as usize;
        attributes.push(AttributeMeta {
            name,
            cardinality,
            offset,
        });
    }
    let ab_count = r.u32()? as usize;
    // Each AB record is at least 33 bytes.
    if ab_count > r.remaining() / 33 {
        return Err(IoError::Truncated);
    }
    let mut abs = Vec::with_capacity(ab_count);
    for _ in 0..ab_count {
        let n_bits = r.u64()?;
        let k = r.u32()? as usize;
        if k == 0 {
            return Err(IoError::BadTag(0));
        }
        let inserted = r.u64()?;
        let mapper = read_mapper(&mut r)?;
        let family = read_family(&mut r)?;
        let word_count = r.u64()? as usize;
        if word_count > r.remaining() / 8 || word_count != (n_bits as usize).div_ceil(64) {
            return Err(IoError::Truncated);
        }
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(r.u64()?);
        }
        let bits = BitVec::from_words(words, n_bits as usize);
        if bits.is_empty() {
            return Err(IoError::Truncated);
        }
        abs.push(ApproximateBitmap::from_parts(
            bits, k, family, mapper, inserted,
        ));
    }
    Ok(AbIndex::from_parts(level, abs, attributes, num_rows))
}

const SHARD_MAGIC: &[u8; 4] = b"ABSH";
const SHARD_VERSION: u16 = 1;

/// Serializes a row-range-sharded index as an `ABSH` envelope.
/// `segments` pairs each shard's starting global row with its index;
/// they must be non-empty and in strictly increasing row order,
/// starting at row 0, with each shard starting exactly where the
/// previous one ended.
///
/// # Panics
///
/// Panics if the segment layout is invalid (this is a programming
/// error on the writer side; readers get [`IoError::BadShardLayout`]).
pub fn shards_to_bytes(segments: &[(u64, &AbIndex)]) -> Vec<u8> {
    assert!(!segments.is_empty(), "no shard segments");
    let mut expected_start = 0u64;
    for (start, index) in segments {
        assert_eq!(
            *start, expected_start,
            "shard at row {start} does not start where the previous ended"
        );
        expected_start = start + index.num_rows() as u64;
    }
    let total: usize = segments.iter().map(|(_, i)| i.size_bytes()).sum();
    let mut out = Vec::with_capacity(32 + total + 96 * segments.len());
    out.extend_from_slice(SHARD_MAGIC);
    put_u16(&mut out, SHARD_VERSION);
    put_u32(&mut out, segments.len() as u32);
    for (start, index) in segments {
        let blob = to_bytes(index);
        put_u64(&mut out, *start);
        put_u64(&mut out, blob.len() as u64);
        out.extend_from_slice(&blob);
    }
    out
}

/// Deserializes an `ABSH` envelope produced by [`shards_to_bytes`]
/// back into `(start_row, index)` segments in row order.
pub fn shards_from_bytes(data: &[u8]) -> Result<Vec<(u64, AbIndex)>, IoError> {
    let mut r = Reader { data, pos: 0 };
    if r.take(4)? != SHARD_MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = r.u16()?;
    if version != SHARD_VERSION {
        return Err(IoError::UnsupportedVersion(version));
    }
    let count = r.u32()? as usize;
    if count == 0 {
        return Err(IoError::BadShardLayout);
    }
    // Each segment carries a 16-byte header plus a non-empty blob.
    if count > r.remaining() / 17 {
        return Err(IoError::Truncated);
    }
    let mut segments = Vec::with_capacity(count);
    let mut expected_start = 0u64;
    for _ in 0..count {
        let start = r.u64()?;
        if start != expected_start {
            return Err(IoError::BadShardLayout);
        }
        let len = r.u64()?;
        if len as usize > r.remaining() {
            return Err(IoError::Truncated);
        }
        let index = from_bytes(r.take(len as usize)?)?;
        if index.num_rows() == 0 {
            return Err(IoError::BadShardLayout);
        }
        expected_start = start + index.num_rows() as u64;
        segments.push((start, index));
    }
    Ok(segments)
}

fn level_tag(level: Level) -> u8 {
    match level {
        Level::PerDataset => 0,
        Level::PerAttribute => 1,
        Level::PerColumn => 2,
    }
}

fn parse_level(tag: u8) -> Result<Level, IoError> {
    match tag {
        0 => Ok(Level::PerDataset),
        1 => Ok(Level::PerAttribute),
        2 => Ok(Level::PerColumn),
        t => Err(IoError::BadTag(t)),
    }
}

fn kind_tag(kind: HashKind) -> u8 {
    match kind {
        HashKind::Rs => 0,
        HashKind::Js => 1,
        HashKind::Pjw => 2,
        HashKind::Elf => 3,
        HashKind::Bkdr => 4,
        HashKind::Sdbm => 5,
        HashKind::Djb => 6,
        HashKind::Dek => 7,
        HashKind::Ap => 8,
        HashKind::Fnv => 9,
        HashKind::MultiplyShift => 10,
        HashKind::Circular => 11,
    }
}

fn parse_kind(tag: u8) -> Result<HashKind, IoError> {
    Ok(match tag {
        0 => HashKind::Rs,
        1 => HashKind::Js,
        2 => HashKind::Pjw,
        3 => HashKind::Elf,
        4 => HashKind::Bkdr,
        5 => HashKind::Sdbm,
        6 => HashKind::Djb,
        7 => HashKind::Dek,
        8 => HashKind::Ap,
        9 => HashKind::Fnv,
        10 => HashKind::MultiplyShift,
        11 => HashKind::Circular,
        t => return Err(IoError::BadTag(t)),
    })
}

fn write_mapper(out: &mut Vec<u8>, mapper: CellMapper) {
    match mapper {
        CellMapper::Shifted { shift } => {
            out.push(0);
            put_u32(out, shift);
        }
        CellMapper::RowOnly => {
            out.push(1);
            put_u32(out, 0);
        }
    }
}

fn read_mapper(r: &mut Reader<'_>) -> Result<CellMapper, IoError> {
    let tag = r.u8()?;
    let shift = r.u32()?;
    match tag {
        // A shift of 64+ would overflow the `row << shift` cell
        // mapping on first use; reject it at decode time instead.
        0 if shift < 64 => Ok(CellMapper::Shifted { shift }),
        1 => Ok(CellMapper::RowOnly),
        t => Err(IoError::BadTag(t)),
    }
}

fn write_family(out: &mut Vec<u8>, family: &HashFamily) {
    match family {
        HashFamily::Independent(kinds) => {
            out.push(0);
            put_u16(out, kinds.len() as u16);
            for &k in kinds {
                out.push(kind_tag(k));
            }
        }
        HashFamily::Sha1Split => out.push(1),
        HashFamily::DoubleHashing => out.push(2),
        HashFamily::ColumnGroup { num_columns } => {
            out.push(3);
            put_u64(out, *num_columns);
        }
    }
}

fn read_family(r: &mut Reader<'_>) -> Result<HashFamily, IoError> {
    match r.u8()? {
        0 => {
            let count = r.u16()? as usize;
            if count == 0 {
                return Err(IoError::BadTag(0));
            }
            let mut kinds = Vec::with_capacity(count);
            for _ in 0..count {
                kinds.push(parse_kind(r.u8()?)?);
            }
            Ok(HashFamily::Independent(kinds))
        }
        1 => Ok(HashFamily::Sha1Split),
        2 => Ok(HashFamily::DoubleHashing),
        3 => Ok(HashFamily::ColumnGroup {
            num_columns: r.u64()?,
        }),
        t => Err(IoError::BadTag(t)),
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], IoError> {
        if self.pos + n > self.data.len() {
            return Err(IoError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, IoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, IoError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, IoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, IoError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AbConfig, Cell};
    use bitmap::{BinnedColumn, BinnedTable};

    fn sample_index(level: Level) -> AbIndex {
        let t = BinnedTable::new(vec![
            BinnedColumn::new("alpha", vec![0, 1, 2, 0, 1, 1, 0, 2], 3),
            BinnedColumn::new("beta", vec![2, 0, 1, 1, 0, 1, 0, 2], 3),
        ]);
        AbIndex::build(&t, &AbConfig::new(level).with_alpha(8))
    }

    #[test]
    fn roundtrip_all_levels() {
        for level in [Level::PerDataset, Level::PerAttribute, Level::PerColumn] {
            let idx = sample_index(level);
            let bytes = to_bytes(&idx);
            let back = from_bytes(&bytes).unwrap();
            assert_eq!(back.level(), idx.level());
            assert_eq!(back.num_rows(), idx.num_rows());
            assert_eq!(back.attributes(), idx.attributes());
            assert_eq!(back.abs().len(), idx.abs().len());
            // Query equivalence on every cell.
            for row in 0..8 {
                for attr in 0..2 {
                    for bin in 0..3 {
                        assert_eq!(
                            back.retrieve_cells(&[Cell::new(row, attr, bin)]),
                            idx.retrieve_cells(&[Cell::new(row, attr, bin)]),
                            "{level:?} cell ({row},{attr},{bin})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn roundtrip_preserves_families() {
        use hashkit::HashFamily;
        let t = BinnedTable::new(vec![BinnedColumn::new("x", vec![0, 1, 0, 1], 2)]);
        for family in [
            HashFamily::Sha1Split,
            HashFamily::DoubleHashing,
            HashFamily::ColumnGroup { num_columns: 0 },
            HashFamily::default_independent(),
        ] {
            let cfg = AbConfig::new(Level::PerAttribute)
                .with_alpha(8)
                .with_family(family.clone());
            let idx = AbIndex::build(&t, &cfg);
            let back = from_bytes(&to_bytes(&idx)).unwrap();
            assert_eq!(back.abs()[0].family(), idx.abs()[0].family());
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(from_bytes(b"NOPE....."), Err(IoError::BadMagic)));
    }

    fn sample_shards() -> Vec<(u64, AbIndex)> {
        let t = BinnedTable::new(vec![
            BinnedColumn::new("alpha", (0..64u32).map(|i| i % 3).collect(), 3),
            BinnedColumn::new("beta", (0..64u32).map(|i| (i * 7) % 4).collect(), 4),
        ]);
        crate::level::shard_ranges(64, 3)
            .into_iter()
            .map(|r| {
                (
                    r.start as u64,
                    AbIndex::build_row_range(
                        &t,
                        &AbConfig::new(Level::PerAttribute).with_alpha(8),
                        r,
                    ),
                )
            })
            .collect()
    }

    fn encode_shards(segments: &[(u64, AbIndex)]) -> Vec<u8> {
        let refs: Vec<(u64, &AbIndex)> = segments.iter().map(|(s, i)| (*s, i)).collect();
        shards_to_bytes(&refs)
    }

    #[test]
    fn shard_envelope_roundtrip() {
        let shards = sample_shards();
        let back = shards_from_bytes(&encode_shards(&shards)).unwrap();
        assert_eq!(back.len(), shards.len());
        for ((s0, i0), (s1, i1)) in shards.iter().zip(&back) {
            assert_eq!(s0, s1);
            assert_eq!(i0.num_rows(), i1.num_rows());
            assert_eq!(i0.attributes(), i1.attributes());
            for (a, b) in i0.abs().iter().zip(i1.abs()) {
                assert_eq!(a.bits(), b.bits());
            }
        }
    }

    #[test]
    fn shard_envelope_rejects_bad_layouts() {
        let shards = sample_shards();
        // Out-of-order segments.
        let swapped: Vec<(u64, &AbIndex)> =
            vec![(shards[1].0, &shards[1].1), (shards[0].0, &shards[0].1)];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"ABSH");
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        for (start, index) in swapped {
            let blob = to_bytes(index);
            bytes.extend_from_slice(&start.to_le_bytes());
            bytes.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&blob);
        }
        assert!(matches!(
            shards_from_bytes(&bytes),
            Err(IoError::BadShardLayout)
        ));
        // Zero segments.
        let mut empty = Vec::new();
        empty.extend_from_slice(b"ABSH");
        empty.extend_from_slice(&1u16.to_le_bytes());
        empty.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            shards_from_bytes(&empty),
            Err(IoError::BadShardLayout)
        ));
        // Wrong magic.
        assert!(matches!(
            shards_from_bytes(b"ABIXxxxxxx"),
            Err(IoError::BadMagic)
        ));
    }

    /// The satellite hardening sweep: every truncation at 64-byte
    /// strides (plus the final byte) must yield a typed error, and
    /// every single-byte flip must decode cleanly or yield a typed
    /// error — the decoder must never panic on malformed input.
    fn corruption_sweep(bytes: &[u8], decode: fn(&[u8]) -> Result<(), IoError>) {
        let mut cuts: Vec<usize> = (0..bytes.len()).step_by(64).collect();
        cuts.push(bytes.len() - 1);
        for cut in cuts {
            let prefix = bytes[..cut].to_vec();
            match std::panic::catch_unwind(move || decode(&prefix)) {
                Ok(res) => assert!(res.is_err(), "truncation at {cut} decoded successfully"),
                Err(_) => panic!("decoder panicked on truncation at {cut}"),
            }
        }
        for pos in 0..bytes.len() {
            for flip in [0xFFu8, 0x01, 0x80] {
                let mut corrupt = bytes.to_vec();
                corrupt[pos] ^= flip;
                assert!(
                    std::panic::catch_unwind(move || {
                        let _ = decode(&corrupt);
                    })
                    .is_ok(),
                    "decoder panicked on flip {flip:#04x} at byte {pos}"
                );
            }
        }
    }

    #[test]
    fn abix_corruption_sweep_never_panics() {
        for level in [Level::PerDataset, Level::PerAttribute, Level::PerColumn] {
            let bytes = to_bytes(&sample_index(level));
            corruption_sweep(&bytes, |b| from_bytes(b).map(|_| ()));
        }
    }

    #[test]
    fn absh_corruption_sweep_never_panics() {
        let bytes = encode_shards(&sample_shards());
        corruption_sweep(&bytes, |b| shards_from_bytes(b).map(|_| ()));
    }

    #[test]
    fn flipped_header_bytes_give_typed_errors() {
        let bytes = to_bytes(&sample_index(Level::PerColumn));
        for pos in 0..4 {
            let mut b = bytes.clone();
            b[pos] ^= 0xFF;
            assert!(matches!(from_bytes(&b), Err(IoError::BadMagic)), "{pos}");
        }
        for pos in 4..6 {
            let mut b = bytes.clone();
            b[pos] ^= 0xFF;
            assert!(
                matches!(from_bytes(&b), Err(IoError::UnsupportedVersion(_))),
                "{pos}"
            );
        }
        let mut b = bytes.clone();
        b[6] ^= 0xFF; // level tag
        assert!(matches!(from_bytes(&b), Err(IoError::BadTag(_))));

        let shard_bytes = encode_shards(&sample_shards());
        for pos in 0..4 {
            let mut b = shard_bytes.clone();
            b[pos] ^= 0xFF;
            assert!(
                matches!(shards_from_bytes(&b), Err(IoError::BadMagic)),
                "{pos}"
            );
        }
        for pos in 4..6 {
            let mut b = shard_bytes.clone();
            b[pos] ^= 0xFF;
            assert!(
                matches!(shards_from_bytes(&b), Err(IoError::UnsupportedVersion(_))),
                "{pos}"
            );
        }
    }

    #[test]
    fn oversized_mapper_shift_rejected() {
        // A shift of 64+ would overflow `row << shift` at query time.
        let bytes = to_bytes(&sample_index(Level::PerAttribute));
        let back = from_bytes(&bytes).unwrap();
        assert!(back.abs()[0].mapper() != CellMapper::Shifted { shift: 64 });
        // Hand-craft: find the first mapper tag (right after the fixed
        // AB header fields) and bump its shift to 64.
        // header: 4 magic + 2 version + 1 level + 8 rows + 4 attr count
        // per attr: 2 + name + 4 + 8 ; then 4 ab count, then per ab:
        // 8 n_bits + 4 k + 8 inserted, then mapper tag u8 + shift u32.
        let mut pos = 4 + 2 + 1 + 8;
        let attr_count = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        for _ in 0..attr_count {
            let name_len = u16::from_le_bytes(bytes[pos..pos + 2].try_into().unwrap()) as usize;
            pos += 2 + name_len + 4 + 8;
        }
        pos += 4; // ab count
        pos += 8 + 4 + 8; // first AB's n_bits, k, inserted
        assert_eq!(bytes[pos], 0, "expected a Shifted mapper tag");
        let mut corrupt = bytes.clone();
        corrupt[pos + 1..pos + 5].copy_from_slice(&64u32.to_le_bytes());
        assert!(matches!(from_bytes(&corrupt), Err(IoError::BadTag(0))));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = to_bytes(&sample_index(Level::PerAttribute));
        for cut in [3, 7, 20, bytes.len() - 1] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = to_bytes(&sample_index(Level::PerAttribute));
        bytes[4] = 0xFF;
        assert!(matches!(
            from_bytes(&bytes),
            Err(IoError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(IoError::BadMagic.to_string().contains("magic"));
        assert!(IoError::Truncated.to_string().contains("truncated"));
        assert!(IoError::BadTag(7).to_string().contains("0x07"));
        assert!(IoError::BadShardLayout.to_string().contains("shard"));
    }
}
