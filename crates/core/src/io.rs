//! Persistent binary format for AB indexes.
//!
//! A downstream user builds the AB once over a (read-only, per §4.1)
//! data set and ships it to query nodes — the paper's privacy scenario
//! (§1, contribution 6) even queries the AB *without* database access.
//! The format is a versioned little-endian layout (version 2 adds a
//! CRC-32 of everything after the checksum field, so bit-rot is caught
//! at decode time instead of surfacing as silently wrong answers):
//!
//! ```text
//! magic "ABIX" | version u16 | crc32 u32 | level u8 | num_rows u64 |
//! attr count u32 | { name_len u16, name, cardinality u32, offset u64 }* |
//! ab count u32  | { n_bits u64, k u32, inserted u64, mapper, family,
//!                   word count u64, words u64* }* |
//! hier flag u8  | [ level count u32,
//!                   { row_span u64, bin_group u32, AB record }* ] |
//! hybrid flag u8 | [ min_density f64, verify_cost f64,
//!                    total_bins u32, bin count u32,
//!                    { attribute u32, bin u32,
//!                      exact_len u64, ROAR bytes,
//!                      fp_len u64, ROAR bytes }* ]
//! ```
//!
//! Version 3 appends the hierarchical-pruning pyramid (`hier flag` =
//! 1 followed by the per-level geometry + AB records; 0 means no
//! pyramid). Versions 1 and 2 end after the base ABs; readers of
//! those versions ignore any trailing bytes, and this build reads
//! them with `hier = None` (callers may rebuild the pyramid from the
//! base AB — the probe-sweep construction is deterministic).
//!
//! Version 4 appends the hybrid exact tier (`crate::hybrid`): per
//! backed (attribute, bin), the exact and companion false-positive
//! Roaring containers as length-prefixed self-checking `ROAR` streams
//! (see `roar::bytes` — each carries its own magic, version and
//! CRC-32, so a damaged container is pinpointed, quarantined and
//! rebuilt without distrusting its neighbours). Bins must appear in
//! strictly increasing (attribute, bin) order. Version ≤ 3 input
//! decodes with `hybrid = None`; callers with source data may rebuild
//! the tier (`AbIndex::ensure_hybrid` is deterministic).
//!
//! A row-range-sharded index (see `ab::shard_ranges` and the `svc`
//! crate) persists as an `ABSH` envelope of independent `ABIX`
//! segments, each tagged with its starting global row and (since
//! version 2) its own CRC-32, so one rotted shard is detected — and
//! repairable — without touching the others:
//!
//! ```text
//! magic "ABSH" | version u16 | shard count u32 |
//! { start_row u64, byte_len u64, crc32 u32, ABIX bytes }*
//! ```
//!
//! Segments are length-prefixed so a reader can skip to any shard
//! without decoding the others, and must appear in strictly increasing
//! `start_row` order starting at row 0. Version-1 payloads (no
//! checksums) remain readable.
//!
//! Three readers serve three robustness postures:
//!
//! * [`from_bytes`] / [`shards_from_bytes`] — strict: the first
//!   corrupt byte fails the whole decode with a typed [`IoError`];
//! * [`shards_from_bytes_checked`] — shard-granular: envelope-level
//!   damage is fatal, but each segment decodes independently so a
//!   caller (e.g. `svc::ShardedIndex::from_bytes_with_repair`) can
//!   rebuild only the corrupted shards from source data;
//! * [`verify`] — diagnostic: checksum status and header sanity per
//!   segment without materializing any bit arrays (`abq verify`).

use crate::analysis::Level;
use crate::encoding::ApproximateBitmap;
use crate::hier::{HierAb, HierLevelSpec};
use crate::hybrid::{HybridAb, HybridConfig};
use crate::level::{AbIndex, AttributeMeta};
use bitmap::BitVec;
use hashkit::{CellMapper, HashFamily, HashKind};

/// Errors arising while decoding a serialized AB index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoError {
    /// Input does not start with the `ABIX` magic.
    BadMagic,
    /// Format version not understood by this build.
    UnsupportedVersion(u16),
    /// Input ended before a field completed.
    Truncated,
    /// A tag byte had no defined meaning.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadString,
    /// `ABSH` shard segments were empty, unordered, or overlapping.
    BadShardLayout,
    /// The stored CRC-32 does not match the payload — the bytes were
    /// corrupted after serialization (bit-rot, torn write, tampering).
    ChecksumMismatch {
        /// Checksum recorded at write time.
        stored: u32,
        /// Checksum recomputed over the received payload.
        computed: u32,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::BadMagic => write!(f, "not an AB index (bad magic)"),
            IoError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            IoError::Truncated => write!(f, "truncated input"),
            IoError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            IoError::BadString => write!(f, "invalid UTF-8 in name"),
            IoError::BadShardLayout => write!(f, "shard segments empty or out of order"),
            IoError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for IoError {}

const MAGIC: &[u8; 4] = b"ABIX";
const VERSION: u16 = 4;
/// Oldest format version this build still reads (checksum-free).
const MIN_VERSION: u16 = 1;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over `data`.
/// Table-driven, built at compile time — no dependencies.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Verifies a stored checksum, counting failures in
/// `io.checksum_failures`.
fn check_crc(stored: u32, payload: &[u8]) -> Result<(), IoError> {
    let computed = crc32(payload);
    if stored != computed {
        obs::counter!("io.checksum_failures").inc();
        return Err(IoError::ChecksumMismatch { stored, computed });
    }
    Ok(())
}

/// Serializes an [`AbIndex`] to bytes (format version 4: the u32 after
/// the version field is a CRC-32 of everything that follows it,
/// including the trailing hier and hybrid sections).
pub fn to_bytes(index: &AbIndex) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + index.size_bytes());
    out.extend_from_slice(MAGIC);
    put_u16(&mut out, VERSION);
    put_u32(&mut out, 0); // checksum, patched below
    out.push(level_tag(index.level()));
    put_u64(&mut out, index.num_rows() as u64);
    put_u32(&mut out, index.attributes().len() as u32);
    for a in index.attributes() {
        put_u16(&mut out, a.name.len() as u16);
        out.extend_from_slice(a.name.as_bytes());
        put_u32(&mut out, a.cardinality);
        put_u64(&mut out, a.offset as u64);
    }
    put_u32(&mut out, index.abs().len() as u32);
    for ab in index.abs() {
        write_ab(&mut out, ab);
    }
    match index.hier() {
        None => out.push(0),
        Some(hier) => {
            out.push(1);
            put_u32(&mut out, hier.levels().len() as u32);
            for level in hier.levels() {
                put_u64(&mut out, level.row_span() as u64);
                put_u32(&mut out, level.bin_group());
                write_ab(&mut out, level.ab());
            }
        }
    }
    match index.hybrid() {
        None => out.push(0),
        Some(hy) => {
            out.push(1);
            put_u64(&mut out, hy.config().min_density.to_bits());
            put_u64(&mut out, hy.config().verify_cost.to_bits());
            put_u32(&mut out, hy.total_bins());
            put_u32(&mut out, hy.bins().len() as u32);
            for hb in hy.bins() {
                put_u32(&mut out, hb.attribute() as u32);
                put_u32(&mut out, hb.bin());
                for container in [hb.exact(), hb.fp()] {
                    let blob = container.to_bytes();
                    put_u64(&mut out, blob.len() as u64);
                    out.extend_from_slice(&blob);
                }
            }
        }
    }
    let crc = crc32(&out[10..]);
    out[6..10].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Writes one AB record (the layout shared by base and hier-level ABs).
fn write_ab(out: &mut Vec<u8>, ab: &ApproximateBitmap) {
    put_u64(out, ab.n_bits());
    put_u32(out, ab.k() as u32);
    put_u64(out, ab.inserted());
    write_mapper(out, ab.mapper());
    write_family(out, ab.family());
    let words = ab.bits().words();
    put_u64(out, words.len() as u64);
    for &w in words {
        put_u64(out, w);
    }
}

/// Reads one AB record written by [`write_ab`].
fn read_ab(r: &mut Reader<'_>) -> Result<ApproximateBitmap, IoError> {
    let n_bits = r.u64()?;
    let k = r.u32()? as usize;
    if k == 0 {
        return Err(IoError::BadTag(0));
    }
    let inserted = r.u64()?;
    let mapper = read_mapper(r)?;
    let family = read_family(r)?;
    let word_count = r.u64()? as usize;
    if word_count > r.remaining() / 8 || word_count != (n_bits as usize).div_ceil(64) {
        return Err(IoError::Truncated);
    }
    let mut words = Vec::with_capacity(word_count);
    for _ in 0..word_count {
        words.push(r.u64()?);
    }
    let bits = BitVec::from_words(words, n_bits as usize);
    if bits.is_empty() {
        return Err(IoError::Truncated);
    }
    Ok(ApproximateBitmap::from_parts(
        bits, k, family, mapper, inserted,
    ))
}

/// Deserializes an [`AbIndex`] from bytes produced by [`to_bytes`].
/// Version-2 input is checksum-verified before any field is trusted;
/// version-1 input (pre-checksum) still decodes.
pub fn from_bytes(data: &[u8]) -> Result<AbIndex, IoError> {
    let mut r = Reader { data, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = r.u16()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(IoError::UnsupportedVersion(version));
    }
    if version >= 2 {
        let stored = r.u32()?;
        check_crc(stored, &data[r.pos..])?;
    }
    parse_index_payload(&mut r, version)
}

/// Parses the post-checksum body shared by all format versions. The
/// trailing hier section exists only from version 3; earlier versions
/// end after the base ABs (trailing bytes, if any, are ignored).
fn parse_index_payload(r: &mut Reader<'_>, version: u16) -> Result<AbIndex, IoError> {
    let level = parse_level(r.u8()?)?;
    let num_rows = r.u64()? as usize;
    let attr_count = r.u32()? as usize;
    // Each attribute record is at least 14 bytes; a count beyond the
    // remaining input is corrupt. Checking before the reserve keeps a
    // hostile header from forcing a huge allocation.
    if attr_count > r.remaining() / 14 {
        return Err(IoError::Truncated);
    }
    let mut attributes = Vec::with_capacity(attr_count);
    for _ in 0..attr_count {
        let name_len = r.u16()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| IoError::BadString)?
            .to_owned();
        let cardinality = r.u32()?;
        let offset = r.u64()? as usize;
        attributes.push(AttributeMeta {
            name,
            cardinality,
            offset,
        });
    }
    let ab_count = r.u32()? as usize;
    // Each AB record is at least 33 bytes.
    if ab_count > r.remaining() / 33 {
        return Err(IoError::Truncated);
    }
    let mut abs = Vec::with_capacity(ab_count);
    for _ in 0..ab_count {
        abs.push(read_ab(r)?);
    }
    let hier = if version >= 3 {
        match r.u8()? {
            0 => None,
            1 => {
                let level_count = r.u32()? as usize;
                // Each hier level record is at least 45 bytes
                // (geometry + minimal AB record).
                if level_count > r.remaining() / 45 {
                    return Err(IoError::Truncated);
                }
                let mut parts = Vec::with_capacity(level_count);
                for _ in 0..level_count {
                    let row_span = r.u64()? as usize;
                    let bin_group = r.u32()?;
                    if row_span == 0 || bin_group == 0 {
                        return Err(IoError::BadTag(0));
                    }
                    let ab = read_ab(r)?;
                    parts.push((
                        HierLevelSpec {
                            row_span,
                            bin_group,
                        },
                        ab,
                    ));
                }
                Some(HierAb::from_serialized(num_rows, &attributes, parts))
            }
            t => return Err(IoError::BadTag(t)),
        }
    } else {
        None
    };
    let hybrid = if version >= 4 {
        match r.u8()? {
            0 => None,
            1 => {
                let min_density = f64::from_bits(r.u64()?);
                let verify_cost = f64::from_bits(r.u64()?);
                if !(0.0..=1.0).contains(&min_density)
                    || !verify_cost.is_finite()
                    || verify_cost < 0.0
                {
                    return Err(IoError::BadTag(1));
                }
                let total_bins = r.u32()?;
                let count = r.u32()? as usize;
                // Each backed-bin record is at least 52 bytes: ids +
                // two length-prefixed minimal (empty) ROAR streams.
                if count > r.remaining() / 52 || count > total_bins as usize {
                    return Err(IoError::Truncated);
                }
                let mut parts = Vec::with_capacity(count);
                let mut prev: Option<(u32, u32)> = None;
                for _ in 0..count {
                    let attribute = r.u32()?;
                    let bin = r.u32()?;
                    if prev.is_some_and(|p| p >= (attribute, bin)) {
                        return Err(IoError::BadShardLayout);
                    }
                    prev = Some((attribute, bin));
                    let exact = read_roar(r)?;
                    let fp = read_roar(r)?;
                    parts.push((attribute, bin, exact, fp));
                }
                Some(HybridAb::from_serialized(
                    HybridConfig {
                        min_density,
                        verify_cost,
                    },
                    num_rows,
                    total_bins,
                    parts,
                ))
            }
            t => return Err(IoError::BadTag(t)),
        }
    } else {
        None
    };
    Ok(AbIndex::from_parts(
        level, abs, attributes, num_rows, hier, hybrid,
    ))
}

/// Reads one length-prefixed, self-checking `ROAR` container stream
/// (see `roar::bytes`), mapping its typed errors onto [`IoError`].
fn read_roar(r: &mut Reader<'_>) -> Result<roar::RoaringBitmap, IoError> {
    let len = r.u64()? as usize;
    let blob = r.take(len)?;
    roar::RoaringBitmap::from_bytes(blob).map_err(|e| match e {
        roar::RoarError::ChecksumMismatch { expected, actual } => IoError::ChecksumMismatch {
            stored: expected,
            computed: actual,
        },
        roar::RoarError::Truncated => IoError::Truncated,
        roar::RoarError::BadMagic => IoError::BadMagic,
        roar::RoarError::UnsupportedVersion(_) | roar::RoarError::Malformed(_) => {
            IoError::BadTag(0)
        }
    })
}

const SHARD_MAGIC: &[u8; 4] = b"ABSH";
const SHARD_VERSION: u16 = 2;
const SHARD_MIN_VERSION: u16 = 1;

/// Serializes a row-range-sharded index as an `ABSH` envelope.
/// `segments` pairs each shard's starting global row with its index;
/// they must be non-empty and in strictly increasing row order,
/// starting at row 0, with each shard starting exactly where the
/// previous one ended.
///
/// # Panics
///
/// Panics if the segment layout is invalid (this is a programming
/// error on the writer side; readers get [`IoError::BadShardLayout`]).
pub fn shards_to_bytes(segments: &[(u64, &AbIndex)]) -> Vec<u8> {
    assert!(!segments.is_empty(), "no shard segments");
    let mut expected_start = 0u64;
    for (start, index) in segments {
        assert_eq!(
            *start, expected_start,
            "shard at row {start} does not start where the previous ended"
        );
        expected_start = start + index.num_rows() as u64;
    }
    let total: usize = segments.iter().map(|(_, i)| i.size_bytes()).sum();
    let mut out = Vec::with_capacity(32 + total + 96 * segments.len());
    out.extend_from_slice(SHARD_MAGIC);
    put_u16(&mut out, SHARD_VERSION);
    put_u32(&mut out, segments.len() as u32);
    for (start, index) in segments {
        let blob = to_bytes(index);
        put_u64(&mut out, *start);
        put_u64(&mut out, blob.len() as u64);
        put_u32(&mut out, crc32(&blob));
        out.extend_from_slice(&blob);
    }
    out
}

/// Deserializes an `ABSH` envelope produced by [`shards_to_bytes`]
/// back into `(start_row, index)` segments in row order. Strict: the
/// first corrupt segment fails the whole decode — use
/// [`shards_from_bytes_checked`] when partial recovery is wanted.
pub fn shards_from_bytes(data: &[u8]) -> Result<Vec<(u64, AbIndex)>, IoError> {
    let mut segments = Vec::new();
    let mut expected_start = 0u64;
    for (start, res) in shards_from_bytes_checked(data)? {
        if start != expected_start {
            return Err(IoError::BadShardLayout);
        }
        let index = res?;
        if index.num_rows() == 0 {
            return Err(IoError::BadShardLayout);
        }
        expected_start = start + index.num_rows() as u64;
        segments.push((start, index));
    }
    Ok(segments)
}

/// Per-segment decode results from [`shards_from_bytes_checked`]: each
/// entry is `(start_row, Ok(index) | Err(segment-local damage))`.
pub type CheckedSegments = Vec<(u64, Result<AbIndex, IoError>)>;

/// Shard-granular `ABSH` decoding: damage to the envelope itself
/// (magic, version, counts, truncation, unordered starts) is fatal,
/// but each segment's checksum verification and decode happen
/// independently, so a flipped byte inside shard *i* yields
/// `Err(ChecksumMismatch)` in slot *i* while every other shard decodes
/// normally. This is the substrate for shard-granular repair.
pub fn shards_from_bytes_checked(data: &[u8]) -> Result<CheckedSegments, IoError> {
    let mut r = Reader { data, pos: 0 };
    if r.take(4)? != SHARD_MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = r.u16()?;
    if !(SHARD_MIN_VERSION..=SHARD_VERSION).contains(&version) {
        return Err(IoError::UnsupportedVersion(version));
    }
    let count = r.u32()? as usize;
    if count == 0 {
        return Err(IoError::BadShardLayout);
    }
    // Each segment carries a fixed header plus a non-empty blob; a
    // count beyond what could fit in the remaining input is corrupt.
    let min_segment = if version >= 2 { 21 } else { 17 };
    if count > r.remaining() / min_segment {
        return Err(IoError::Truncated);
    }
    let mut segments = Vec::with_capacity(count);
    let mut prev_start: Option<u64> = None;
    for _ in 0..count {
        let start = r.u64()?;
        let ordered = match prev_start {
            None => start == 0,
            Some(p) => start > p,
        };
        if !ordered {
            return Err(IoError::BadShardLayout);
        }
        prev_start = Some(start);
        let len = r.u64()?;
        let stored = if version >= 2 { Some(r.u32()?) } else { None };
        if len as usize > r.remaining() {
            return Err(IoError::Truncated);
        }
        let blob = r.take(len as usize)?;
        let res = match stored.map(|s| check_crc(s, blob)) {
            Some(Err(e)) => Err(e),
            _ => from_bytes(blob),
        };
        segments.push((start, res));
    }
    Ok(segments)
}

/// Byte extent of one `ABSH` segment within the envelope — the
/// substrate for page-granular storage (the `store` crate maps damaged
/// file pages back to the shards whose bytes they cover, and a direct
/// reader can slice one shard out of a file without decoding the
/// others).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentExtent {
    /// Segment position in the envelope.
    pub shard: usize,
    /// First global row the segment covers.
    pub start_row: u64,
    /// Byte offset of the segment (including its per-segment header)
    /// from the start of the envelope.
    pub offset: usize,
    /// Byte length of the segment including its header.
    pub len: usize,
}

/// Walks an `ABSH` envelope and returns each segment's byte extent
/// without decoding (or even checksum-verifying) any segment body —
/// only the envelope header and the fixed per-segment headers are
/// read, so this stays O(shards) on a multi-gigabyte file.
pub fn segment_extents(data: &[u8]) -> Result<Vec<SegmentExtent>, IoError> {
    let mut r = Reader { data, pos: 0 };
    if r.take(4)? != SHARD_MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = r.u16()?;
    if !(SHARD_MIN_VERSION..=SHARD_VERSION).contains(&version) {
        return Err(IoError::UnsupportedVersion(version));
    }
    let count = r.u32()? as usize;
    if count == 0 {
        return Err(IoError::BadShardLayout);
    }
    let min_segment = if version >= 2 { 21 } else { 17 };
    if count > r.remaining() / min_segment {
        return Err(IoError::Truncated);
    }
    let mut extents = Vec::with_capacity(count);
    let mut prev_start: Option<u64> = None;
    for shard in 0..count {
        let offset = r.pos;
        let start_row = r.u64()?;
        let ordered = match prev_start {
            None => start_row == 0,
            Some(p) => start_row > p,
        };
        if !ordered {
            return Err(IoError::BadShardLayout);
        }
        prev_start = Some(start_row);
        let len = r.u64()?;
        if version >= 2 {
            r.u32()?; // per-segment CRC; extents don't verify it
        }
        if len as usize > r.remaining() {
            return Err(IoError::Truncated);
        }
        r.take(len as usize)?;
        extents.push(SegmentExtent {
            shard,
            start_row,
            offset,
            len: r.pos - offset,
        });
    }
    Ok(extents)
}

/// Checksum state of one stored segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChecksumStatus {
    /// Stored and recomputed CRC-32 agree.
    Ok,
    /// The payload does not hash to the stored CRC-32.
    Mismatch {
        /// Checksum recorded at write time.
        stored: u32,
        /// Checksum recomputed over the received payload.
        computed: u32,
    },
    /// Version-1 payload — written before checksums existed.
    Absent,
}

/// The cheap-to-read prefix of one `ABIX` payload: everything before
/// the bit arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Encoding level recorded in the segment.
    pub level: Level,
    /// Rows the segment covers.
    pub num_rows: u64,
    /// Attribute count.
    pub attributes: u32,
    /// Approximate-bitmap count.
    pub abs: u32,
}

/// Status of one segment from [`verify`].
#[derive(Clone, Debug)]
pub struct SegmentReport {
    /// Segment position (always 0 for a bare `ABIX` file).
    pub shard: usize,
    /// First global row the segment claims to cover.
    pub start_row: u64,
    /// Serialized segment size in bytes.
    pub byte_len: usize,
    /// Checksum verification outcome.
    pub checksum: ChecksumStatus,
    /// Header fields, or the typed error met while reading them.
    pub header: Result<SegmentHeader, IoError>,
}

impl SegmentReport {
    /// Whether the segment passed every check it supports.
    pub fn healthy(&self) -> bool {
        !matches!(self.checksum, ChecksumStatus::Mismatch { .. }) && self.header.is_ok()
    }
}

/// Outcome of [`verify`]: one report per stored segment.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// `"ABIX"` or `"ABSH"`.
    pub container: &'static str,
    /// Format version of the container.
    pub version: u16,
    /// Per-segment status, in storage order.
    pub segments: Vec<SegmentReport>,
}

impl VerifyReport {
    /// Whether every segment is checksum-clean with a sane header.
    pub fn healthy(&self) -> bool {
        self.segments.iter().all(SegmentReport::healthy)
    }
}

/// Walks a serialized `ABIX` or `ABSH` byte stream and reports
/// per-segment checksum status and header sanity **without** decoding
/// any bit array — memory stays O(attributes), not O(index), so a
/// multi-gigabyte file can be audited cheaply (`abq verify`).
pub fn verify(data: &[u8]) -> Result<VerifyReport, IoError> {
    let mut r = Reader { data, pos: 0 };
    let magic = r.take(4)?;
    if magic == MAGIC {
        let version = r.u16()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(IoError::UnsupportedVersion(version));
        }
        return Ok(VerifyReport {
            container: "ABIX",
            version,
            segments: vec![inspect_segment(data, 0, 0)],
        });
    }
    if magic != SHARD_MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = r.u16()?;
    if !(SHARD_MIN_VERSION..=SHARD_VERSION).contains(&version) {
        return Err(IoError::UnsupportedVersion(version));
    }
    let count = r.u32()? as usize;
    if count == 0 {
        return Err(IoError::BadShardLayout);
    }
    let min_segment = if version >= 2 { 21 } else { 17 };
    if count > r.remaining() / min_segment {
        return Err(IoError::Truncated);
    }
    let mut segments = Vec::with_capacity(count);
    for shard in 0..count {
        let start = r.u64()?;
        let len = r.u64()?;
        let envelope_crc = if version >= 2 { Some(r.u32()?) } else { None };
        if len as usize > r.remaining() {
            return Err(IoError::Truncated);
        }
        let blob = r.take(len as usize)?;
        let mut report = inspect_segment(blob, shard, start);
        // The envelope's per-segment checksum covers the whole blob;
        // it wins over the blob's own (inner) checksum status.
        if let Some(stored) = envelope_crc {
            let computed = crc32(blob);
            report.checksum = if stored == computed {
                ChecksumStatus::Ok
            } else {
                obs::counter!("io.checksum_failures").inc();
                ChecksumStatus::Mismatch { stored, computed }
            };
        }
        segments.push(report);
    }
    Ok(VerifyReport {
        container: "ABSH",
        version,
        segments,
    })
}

/// Checks one `ABIX` blob's checksum and parses its header fields
/// without touching the bit arrays.
fn inspect_segment(blob: &[u8], shard: usize, start_row: u64) -> SegmentReport {
    let mut report = SegmentReport {
        shard,
        start_row,
        byte_len: blob.len(),
        checksum: ChecksumStatus::Absent,
        header: Err(IoError::Truncated),
    };
    let mut r = Reader { data: blob, pos: 0 };
    report.header = (|| {
        if r.take(4)? != MAGIC {
            return Err(IoError::BadMagic);
        }
        let version = r.u16()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(IoError::UnsupportedVersion(version));
        }
        if version >= 2 {
            let stored = r.u32()?;
            let computed = crc32(&blob[r.pos..]);
            report.checksum = if stored == computed {
                ChecksumStatus::Ok
            } else {
                obs::counter!("io.checksum_failures").inc();
                ChecksumStatus::Mismatch { stored, computed }
            };
        }
        let level = parse_level(r.u8()?)?;
        let num_rows = r.u64()?;
        let attributes = r.u32()?;
        if attributes as usize > r.remaining() / 14 {
            return Err(IoError::Truncated);
        }
        for _ in 0..attributes {
            let name_len = r.u16()? as usize;
            std::str::from_utf8(r.take(name_len)?).map_err(|_| IoError::BadString)?;
            r.u32()?; // cardinality
            r.u64()?; // offset
        }
        let abs = r.u32()?;
        if abs as usize > r.remaining() / 33 {
            return Err(IoError::Truncated);
        }
        Ok(SegmentHeader {
            level,
            num_rows,
            attributes,
            abs,
        })
    })();
    report
}

fn level_tag(level: Level) -> u8 {
    match level {
        Level::PerDataset => 0,
        Level::PerAttribute => 1,
        Level::PerColumn => 2,
    }
}

fn parse_level(tag: u8) -> Result<Level, IoError> {
    match tag {
        0 => Ok(Level::PerDataset),
        1 => Ok(Level::PerAttribute),
        2 => Ok(Level::PerColumn),
        t => Err(IoError::BadTag(t)),
    }
}

fn kind_tag(kind: HashKind) -> u8 {
    match kind {
        HashKind::Rs => 0,
        HashKind::Js => 1,
        HashKind::Pjw => 2,
        HashKind::Elf => 3,
        HashKind::Bkdr => 4,
        HashKind::Sdbm => 5,
        HashKind::Djb => 6,
        HashKind::Dek => 7,
        HashKind::Ap => 8,
        HashKind::Fnv => 9,
        HashKind::MultiplyShift => 10,
        HashKind::Circular => 11,
    }
}

fn parse_kind(tag: u8) -> Result<HashKind, IoError> {
    Ok(match tag {
        0 => HashKind::Rs,
        1 => HashKind::Js,
        2 => HashKind::Pjw,
        3 => HashKind::Elf,
        4 => HashKind::Bkdr,
        5 => HashKind::Sdbm,
        6 => HashKind::Djb,
        7 => HashKind::Dek,
        8 => HashKind::Ap,
        9 => HashKind::Fnv,
        10 => HashKind::MultiplyShift,
        11 => HashKind::Circular,
        t => return Err(IoError::BadTag(t)),
    })
}

fn write_mapper(out: &mut Vec<u8>, mapper: CellMapper) {
    match mapper {
        CellMapper::Shifted { shift } => {
            out.push(0);
            put_u32(out, shift);
        }
        CellMapper::RowOnly => {
            out.push(1);
            put_u32(out, 0);
        }
    }
}

fn read_mapper(r: &mut Reader<'_>) -> Result<CellMapper, IoError> {
    let tag = r.u8()?;
    let shift = r.u32()?;
    match tag {
        // A shift of 64+ would overflow the `row << shift` cell
        // mapping on first use; reject it at decode time instead.
        0 if shift < 64 => Ok(CellMapper::Shifted { shift }),
        1 => Ok(CellMapper::RowOnly),
        t => Err(IoError::BadTag(t)),
    }
}

fn write_family(out: &mut Vec<u8>, family: &HashFamily) {
    match family {
        HashFamily::Independent(kinds) => {
            out.push(0);
            put_u16(out, kinds.len() as u16);
            for &k in kinds {
                out.push(kind_tag(k));
            }
        }
        HashFamily::Sha1Split => out.push(1),
        HashFamily::DoubleHashing => out.push(2),
        HashFamily::ColumnGroup { num_columns } => {
            out.push(3);
            put_u64(out, *num_columns);
        }
    }
}

fn read_family(r: &mut Reader<'_>) -> Result<HashFamily, IoError> {
    match r.u8()? {
        0 => {
            let count = r.u16()? as usize;
            if count == 0 {
                return Err(IoError::BadTag(0));
            }
            let mut kinds = Vec::with_capacity(count);
            for _ in 0..count {
                kinds.push(parse_kind(r.u8()?)?);
            }
            Ok(HashFamily::Independent(kinds))
        }
        1 => Ok(HashFamily::Sha1Split),
        2 => Ok(HashFamily::DoubleHashing),
        3 => Ok(HashFamily::ColumnGroup {
            num_columns: r.u64()?,
        }),
        t => Err(IoError::BadTag(t)),
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], IoError> {
        if self.pos + n > self.data.len() {
            return Err(IoError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, IoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, IoError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, IoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, IoError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AbConfig, Cell};
    use bitmap::{BinnedColumn, BinnedTable};

    fn sample_index(level: Level) -> AbIndex {
        let t = BinnedTable::new(vec![
            BinnedColumn::new("alpha", vec![0, 1, 2, 0, 1, 1, 0, 2], 3),
            BinnedColumn::new("beta", vec![2, 0, 1, 1, 0, 1, 0, 2], 3),
        ]);
        AbIndex::build(&t, &AbConfig::new(level).with_alpha(8))
    }

    #[test]
    fn roundtrip_all_levels() {
        for level in [Level::PerDataset, Level::PerAttribute, Level::PerColumn] {
            let idx = sample_index(level);
            let bytes = to_bytes(&idx);
            let back = from_bytes(&bytes).unwrap();
            assert_eq!(back.level(), idx.level());
            assert_eq!(back.num_rows(), idx.num_rows());
            assert_eq!(back.attributes(), idx.attributes());
            assert_eq!(back.abs().len(), idx.abs().len());
            // Query equivalence on every cell.
            for row in 0..8 {
                for attr in 0..2 {
                    for bin in 0..3 {
                        assert_eq!(
                            back.retrieve_cells(&[Cell::new(row, attr, bin)]),
                            idx.retrieve_cells(&[Cell::new(row, attr, bin)]),
                            "{level:?} cell ({row},{attr},{bin})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn roundtrip_preserves_families() {
        use hashkit::HashFamily;
        let t = BinnedTable::new(vec![BinnedColumn::new("x", vec![0, 1, 0, 1], 2)]);
        for family in [
            HashFamily::Sha1Split,
            HashFamily::DoubleHashing,
            HashFamily::ColumnGroup { num_columns: 0 },
            HashFamily::default_independent(),
        ] {
            let cfg = AbConfig::new(Level::PerAttribute)
                .with_alpha(8)
                .with_family(family.clone());
            let idx = AbIndex::build(&t, &cfg);
            let back = from_bytes(&to_bytes(&idx)).unwrap();
            assert_eq!(back.abs()[0].family(), idx.abs()[0].family());
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(from_bytes(b"NOPE....."), Err(IoError::BadMagic)));
    }

    #[test]
    fn roundtrip_preserves_hier_pyramid() {
        use crate::hier::{HierConfig, HierLevelSpec};
        use bitmap::{AttrRange, RectQuery};
        let t = BinnedTable::new(vec![BinnedColumn::new(
            "v",
            (0..512u32).map(|i| i / 64).collect(),
            8,
        )]);
        let mut idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(32));
        idx.ensure_hier(&HierConfig {
            levels: vec![
                HierLevelSpec {
                    row_span: 32,
                    bin_group: 2,
                },
                HierLevelSpec {
                    row_span: 128,
                    bin_group: 4,
                },
            ],
        });
        let bytes = to_bytes(&idx);
        let back = from_bytes(&bytes).unwrap();
        let (h0, h1) = (idx.hier().unwrap(), back.hier().unwrap());
        assert_eq!(h0.config(), h1.config());
        for (a, b) in h0.levels().iter().zip(h1.levels()) {
            assert_eq!(a.ab().bits(), b.ab().bits());
            assert_eq!(a.ab().inserted(), b.ab().inserted());
        }
        for bin in 0..8u32 {
            let q = RectQuery::new(vec![AttrRange::new(0, bin, bin)], 0, 511);
            assert_eq!(h1.prune(&q), h0.prune(&q), "bin {bin}");
        }
        // And an index without a pyramid round-trips to None.
        let plain = from_bytes(&to_bytes(&sample_index(Level::PerAttribute))).unwrap();
        assert!(plain.hier().is_none());
    }

    #[test]
    fn corrupt_hier_flag_rejected() {
        let mut idx = sample_index(Level::PerAttribute);
        idx.ensure_hier(&crate::hier::HierConfig::default());
        let mut bytes = to_bytes(&idx);
        // The hier flag is the byte where the trailing sections start:
        // everything after the last base-AB word. Find it by
        // re-encoding without the pyramid — the plain blob ends with
        // the hier flag followed by the hybrid flag, so the hier flag
        // sits 2 bytes before its end.
        let plain = to_bytes(&AbIndex::from_parts(
            idx.level(),
            idx.abs().to_vec(),
            idx.attributes().to_vec(),
            idx.num_rows(),
            None,
            None,
        ));
        let flag_pos = plain.len() - 2;
        assert_eq!(bytes[flag_pos], 1, "hier flag not where expected");
        bytes[flag_pos] = 7;
        let crc = crc32(&bytes[10..]);
        bytes[6..10].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(from_bytes(&bytes), Err(IoError::BadTag(7))));
    }

    fn sample_shards() -> Vec<(u64, AbIndex)> {
        let t = BinnedTable::new(vec![
            BinnedColumn::new("alpha", (0..64u32).map(|i| i % 3).collect(), 3),
            BinnedColumn::new("beta", (0..64u32).map(|i| (i * 7) % 4).collect(), 4),
        ]);
        crate::level::shard_ranges(64, 3)
            .into_iter()
            .map(|r| {
                (
                    r.start as u64,
                    AbIndex::build_row_range(
                        &t,
                        &AbConfig::new(Level::PerAttribute).with_alpha(8),
                        r,
                    ),
                )
            })
            .collect()
    }

    fn encode_shards(segments: &[(u64, AbIndex)]) -> Vec<u8> {
        let refs: Vec<(u64, &AbIndex)> = segments.iter().map(|(s, i)| (*s, i)).collect();
        shards_to_bytes(&refs)
    }

    #[test]
    fn shard_envelope_roundtrip() {
        let shards = sample_shards();
        let back = shards_from_bytes(&encode_shards(&shards)).unwrap();
        assert_eq!(back.len(), shards.len());
        for ((s0, i0), (s1, i1)) in shards.iter().zip(&back) {
            assert_eq!(s0, s1);
            assert_eq!(i0.num_rows(), i1.num_rows());
            assert_eq!(i0.attributes(), i1.attributes());
            for (a, b) in i0.abs().iter().zip(i1.abs()) {
                assert_eq!(a.bits(), b.bits());
            }
        }
    }

    #[test]
    fn shard_envelope_rejects_bad_layouts() {
        let shards = sample_shards();
        // Out-of-order segments.
        let swapped: Vec<(u64, &AbIndex)> =
            vec![(shards[1].0, &shards[1].1), (shards[0].0, &shards[0].1)];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"ABSH");
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        for (start, index) in swapped {
            let blob = to_bytes(index);
            bytes.extend_from_slice(&start.to_le_bytes());
            bytes.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&blob);
        }
        assert!(matches!(
            shards_from_bytes(&bytes),
            Err(IoError::BadShardLayout)
        ));
        // Zero segments.
        let mut empty = Vec::new();
        empty.extend_from_slice(b"ABSH");
        empty.extend_from_slice(&1u16.to_le_bytes());
        empty.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            shards_from_bytes(&empty),
            Err(IoError::BadShardLayout)
        ));
        // Wrong magic.
        assert!(matches!(
            shards_from_bytes(b"ABIXxxxxxx"),
            Err(IoError::BadMagic)
        ));
    }

    /// The satellite hardening sweep: every truncation at 64-byte
    /// strides (plus the final byte) must yield a typed error, and
    /// every single-byte flip must decode cleanly or yield a typed
    /// error — the decoder must never panic on malformed input.
    fn corruption_sweep(bytes: &[u8], decode: fn(&[u8]) -> Result<(), IoError>) {
        let mut cuts: Vec<usize> = (0..bytes.len()).step_by(64).collect();
        cuts.push(bytes.len() - 1);
        for cut in cuts {
            let prefix = bytes[..cut].to_vec();
            match std::panic::catch_unwind(move || decode(&prefix)) {
                Ok(res) => assert!(res.is_err(), "truncation at {cut} decoded successfully"),
                Err(_) => panic!("decoder panicked on truncation at {cut}"),
            }
        }
        for pos in 0..bytes.len() {
            for flip in [0xFFu8, 0x01, 0x80] {
                let mut corrupt = bytes.to_vec();
                corrupt[pos] ^= flip;
                assert!(
                    std::panic::catch_unwind(move || {
                        let _ = decode(&corrupt);
                    })
                    .is_ok(),
                    "decoder panicked on flip {flip:#04x} at byte {pos}"
                );
            }
        }
    }

    #[test]
    fn abix_corruption_sweep_never_panics() {
        for level in [Level::PerDataset, Level::PerAttribute, Level::PerColumn] {
            let bytes = to_bytes(&sample_index(level));
            corruption_sweep(&bytes, |b| from_bytes(b).map(|_| ()));
        }
    }

    #[test]
    fn absh_corruption_sweep_never_panics() {
        let bytes = encode_shards(&sample_shards());
        corruption_sweep(&bytes, |b| shards_from_bytes(b).map(|_| ()));
    }

    /// Recomputes and patches the v2 checksum after a deliberate test
    /// mutation, so the mutated field itself — not the checksum — is
    /// what the decoder trips over.
    fn reseal(bytes: &mut [u8]) {
        let crc = crc32(&bytes[10..]);
        bytes[6..10].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn flipped_header_bytes_give_typed_errors() {
        let bytes = to_bytes(&sample_index(Level::PerColumn));
        for pos in 0..4 {
            let mut b = bytes.clone();
            b[pos] ^= 0xFF;
            assert!(matches!(from_bytes(&b), Err(IoError::BadMagic)), "{pos}");
        }
        for pos in 4..6 {
            let mut b = bytes.clone();
            b[pos] ^= 0xFF;
            assert!(
                matches!(from_bytes(&b), Err(IoError::UnsupportedVersion(_))),
                "{pos}"
            );
        }
        // Any flip past the checksum field is caught by the checksum…
        let mut b = bytes.clone();
        b[10] ^= 0xFF; // level tag
        assert!(matches!(
            from_bytes(&b),
            Err(IoError::ChecksumMismatch { .. })
        ));
        // …and with the checksum resealed, the field's own validation
        // fires (the v1 behaviour).
        reseal(&mut b);
        assert!(matches!(from_bytes(&b), Err(IoError::BadTag(_))));

        let shard_bytes = encode_shards(&sample_shards());
        for pos in 0..4 {
            let mut b = shard_bytes.clone();
            b[pos] ^= 0xFF;
            assert!(
                matches!(shards_from_bytes(&b), Err(IoError::BadMagic)),
                "{pos}"
            );
        }
        for pos in 4..6 {
            let mut b = shard_bytes.clone();
            b[pos] ^= 0xFF;
            assert!(
                matches!(shards_from_bytes(&b), Err(IoError::UnsupportedVersion(_))),
                "{pos}"
            );
        }
    }

    #[test]
    fn oversized_mapper_shift_rejected() {
        // A shift of 64+ would overflow `row << shift` at query time.
        let bytes = to_bytes(&sample_index(Level::PerAttribute));
        let back = from_bytes(&bytes).unwrap();
        assert!(back.abs()[0].mapper() != CellMapper::Shifted { shift: 64 });
        // Hand-craft: find the first mapper tag (right after the fixed
        // AB header fields) and bump its shift to 64.
        // header: 4 magic + 2 version + 4 crc + 1 level + 8 rows +
        // 4 attr count; per attr: 2 + name + 4 + 8; then 4 ab count,
        // then per ab: 8 n_bits + 4 k + 8 inserted, then mapper tag u8
        // + shift u32.
        let mut pos = 4 + 2 + 4 + 1 + 8;
        let attr_count = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        for _ in 0..attr_count {
            let name_len = u16::from_le_bytes(bytes[pos..pos + 2].try_into().unwrap()) as usize;
            pos += 2 + name_len + 4 + 8;
        }
        pos += 4; // ab count
        pos += 8 + 4 + 8; // first AB's n_bits, k, inserted
        assert_eq!(bytes[pos], 0, "expected a Shifted mapper tag");
        let mut corrupt = bytes.clone();
        corrupt[pos + 1..pos + 5].copy_from_slice(&64u32.to_le_bytes());
        reseal(&mut corrupt);
        assert!(matches!(from_bytes(&corrupt), Err(IoError::BadTag(0))));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = to_bytes(&sample_index(Level::PerAttribute));
        for cut in [3, 7, 20, bytes.len() - 1] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = to_bytes(&sample_index(Level::PerAttribute));
        bytes[4] = 0xFF;
        assert!(matches!(
            from_bytes(&bytes),
            Err(IoError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(IoError::BadMagic.to_string().contains("magic"));
        assert!(IoError::Truncated.to_string().contains("truncated"));
        assert!(IoError::BadTag(7).to_string().contains("0x07"));
        assert!(IoError::BadShardLayout.to_string().contains("shard"));
        assert!(IoError::ChecksumMismatch {
            stored: 0xDEAD_BEEF,
            computed: 1
        }
        .to_string()
        .contains("0xdeadbeef"));
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn payload_flip_yields_checksum_mismatch() {
        let bytes = to_bytes(&sample_index(Level::PerAttribute));
        // Every byte past the checksum field is covered by it.
        for pos in [10, 20, bytes.len() / 2, bytes.len() - 1] {
            let mut b = bytes.clone();
            b[pos] ^= 0x40;
            assert!(
                matches!(from_bytes(&b), Err(IoError::ChecksumMismatch { .. })),
                "flip at {pos} not caught"
            );
        }
    }

    #[test]
    fn version1_payload_without_checksum_still_decodes() {
        let idx = sample_index(Level::PerAttribute);
        let v2 = to_bytes(&idx);
        // v1 layout = magic | version 1 | payload (no checksum field).
        let mut v1 = Vec::with_capacity(v2.len() - 4);
        v1.extend_from_slice(&v2[..4]);
        v1.extend_from_slice(&1u16.to_le_bytes());
        v1.extend_from_slice(&v2[10..]);
        let back = from_bytes(&v1).unwrap();
        assert_eq!(back.num_rows(), idx.num_rows());
        assert_eq!(back.attributes(), idx.attributes());
        for (a, b) in back.abs().iter().zip(idx.abs()) {
            assert_eq!(a.bits(), b.bits());
        }
    }

    /// 512 clustered rows in 8 bins, every bin exactly backed.
    fn hybrid_index() -> AbIndex {
        let t = BinnedTable::new(vec![BinnedColumn::new(
            "v",
            (0..512u32).map(|i| i / 64).collect(),
            8,
        )]);
        let mut idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(8));
        idx.ensure_hybrid(
            &t,
            &crate::hybrid::HybridConfig {
                min_density: 0.0,
                ..Default::default()
            },
        );
        idx
    }

    #[test]
    fn version3_payload_without_hybrid_section_still_decodes() {
        let mut idx = sample_index(Level::PerAttribute);
        idx.ensure_hier(&crate::hier::HierConfig::default());
        let v4 = to_bytes(&idx);
        // v3 layout = v4 minus the trailing hybrid section, which for
        // an index without a tier is the single 0 flag byte.
        let mut v3 = v4.clone();
        assert_eq!(v3.pop(), Some(0), "hybrid flag not trailing");
        v3[4..6].copy_from_slice(&3u16.to_le_bytes());
        reseal(&mut v3);
        let back = from_bytes(&v3).unwrap();
        assert!(back.hybrid().is_none());
        assert!(back.hier().is_some(), "v3 hier section must still parse");
        assert_eq!(back.attributes(), idx.attributes());
    }

    #[test]
    fn roundtrip_preserves_hybrid_tier_bit_identically() {
        let idx = hybrid_index();
        assert!(!idx.hybrid().unwrap().bins().is_empty());
        let bytes = to_bytes(&idx);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.hybrid(), idx.hybrid());
        // Re-serializing the decoded index reproduces the same bytes —
        // the store round trip is bit-identical to in-RAM serving.
        assert_eq!(to_bytes(&back), bytes);
    }

    #[test]
    fn corrupt_hybrid_flag_rejected() {
        let idx = hybrid_index();
        let mut bytes = to_bytes(&idx);
        // The hybrid flag is the last byte of the tier-less encoding.
        let plain = to_bytes(&AbIndex::from_parts(
            idx.level(),
            idx.abs().to_vec(),
            idx.attributes().to_vec(),
            idx.num_rows(),
            None,
            None,
        ));
        let flag_pos = plain.len() - 1;
        assert_eq!(bytes[flag_pos], 1, "hybrid flag not where expected");
        bytes[flag_pos] = 9;
        reseal(&mut bytes);
        assert!(matches!(from_bytes(&bytes), Err(IoError::BadTag(9))));
    }

    #[test]
    fn damaged_container_is_caught_by_its_own_checksum() {
        let idx = hybrid_index();
        let mut bytes = to_bytes(&idx);
        // Flip a byte inside the first ROAR stream's body and reseal
        // the outer ABIX checksum: the container's own CRC still
        // pinpoints the damage (this is what lets the store scrubber
        // quarantine one container instead of distrusting the blob).
        let pos = bytes
            .windows(4)
            .rposition(|w| w == b"ROAR")
            .expect("no ROAR stream in hybrid section");
        bytes[pos + 12] ^= 0x40;
        reseal(&mut bytes);
        assert!(matches!(
            from_bytes(&bytes),
            Err(IoError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn hybrid_abix_corruption_sweep_never_panics() {
        let bytes = to_bytes(&hybrid_index());
        corruption_sweep(&bytes, |b| from_bytes(b).map(|_| ()));
    }

    #[test]
    fn checked_reader_isolates_the_corrupt_shard() {
        let shards = sample_shards();
        let bytes = encode_shards(&shards);
        // Flip one byte inside the *last* segment's blob (well past
        // the envelope header and earlier segments).
        let mut corrupt = bytes.clone();
        let pos = bytes.len() - 3;
        corrupt[pos] ^= 0xFF;
        let segs = shards_from_bytes_checked(&corrupt).unwrap();
        assert_eq!(segs.len(), shards.len());
        for (i, (start, res)) in segs.iter().enumerate() {
            assert_eq!(*start, shards[i].0);
            if i == shards.len() - 1 {
                assert!(
                    matches!(res, Err(IoError::ChecksumMismatch { .. })),
                    "corrupt shard not flagged: {res:?}"
                );
            } else {
                assert!(res.is_ok(), "healthy shard {i} failed: {res:?}");
            }
        }
        // The strict reader fails the whole decode on the same input.
        assert!(matches!(
            shards_from_bytes(&corrupt),
            Err(IoError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn verify_reports_per_segment_status() {
        let shards = sample_shards();
        let bytes = encode_shards(&shards);
        let report = verify(&bytes).unwrap();
        assert_eq!(report.container, "ABSH");
        assert_eq!(report.version, 2);
        assert!(report.healthy());
        assert_eq!(report.segments.len(), shards.len());
        for (seg, (start, idx)) in report.segments.iter().zip(&shards) {
            assert_eq!(seg.start_row, *start);
            assert_eq!(seg.checksum, ChecksumStatus::Ok);
            let h = seg.header.as_ref().unwrap();
            assert_eq!(h.num_rows, idx.num_rows() as u64);
            assert_eq!(h.level, Level::PerAttribute);
            assert_eq!(h.attributes, 2);
        }

        let mut corrupt = bytes.clone();
        let pos = bytes.len() - 3;
        corrupt[pos] ^= 0xFF;
        let report = verify(&corrupt).unwrap();
        assert!(!report.healthy());
        assert!(report.segments.last().unwrap().checksum != ChecksumStatus::Ok);
        assert!(report.segments[..report.segments.len() - 1]
            .iter()
            .all(SegmentReport::healthy));

        // A bare ABIX file verifies too.
        let single = to_bytes(&sample_index(Level::PerColumn));
        let report = verify(&single).unwrap();
        assert_eq!(report.container, "ABIX");
        assert!(report.healthy());
        assert_eq!(
            report.segments[0].header.as_ref().unwrap().level,
            Level::PerColumn
        );

        assert!(matches!(verify(b"JUNKjunk"), Err(IoError::BadMagic)));
    }

    #[test]
    fn segment_extents_tile_the_envelope_exactly() {
        let shards = sample_shards();
        let bytes = encode_shards(&shards);
        let extents = segment_extents(&bytes).unwrap();
        assert_eq!(extents.len(), shards.len());
        // Extents start right after the 10-byte envelope header, are
        // contiguous, and end exactly at the end of the buffer.
        let mut expected_off = 10;
        for (e, (start, index)) in extents.iter().zip(&shards) {
            assert_eq!(e.offset, expected_off);
            assert_eq!(e.start_row, *start);
            // Slicing the extent and skipping its 20-byte header gives
            // back a decodable ABIX blob.
            let blob = &bytes[e.offset + 20..e.offset + e.len];
            let back = from_bytes(blob).unwrap();
            assert_eq!(back.num_rows(), index.num_rows());
            expected_off += e.len;
        }
        assert_eq!(expected_off, bytes.len());

        // Extents never verify checksums: a payload flip inside a
        // segment body leaves the walk intact.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 3;
        corrupt[last] ^= 0xFF;
        assert_eq!(segment_extents(&corrupt).unwrap(), extents);

        // Envelope damage is still typed.
        assert!(matches!(
            segment_extents(b"JUNKjunkjunk"),
            Err(IoError::BadMagic)
        ));
        assert!(matches!(
            segment_extents(&bytes[..bytes.len() - 1]),
            Err(IoError::Truncated)
        ));
    }
}
