//! The Approximate Bitmap itself: a hash-addressed bit array.
//!
//! [`ApproximateBitmap`] implements the insertion algorithm of Figure 3
//! and the cell test at the heart of the retrieval algorithms of
//! Figures 5 and 7: each set bit of the bitmap matrix is mapped to `k`
//! positions via the configured [`HashFamily`] and [`CellMapper`];
//! membership holds iff all `k` positions are set. No false negatives
//! can occur; false positives occur at the §4.1 rate.

use bitmap::{BitVec, BoolMatrix};
use hashkit::{CellMapper, HashFamily};
use serde::{Deserialize, Serialize};

/// A single Bloom-style approximate bitmap over matrix cells.
///
/// # Examples
///
/// ```
/// use ab::ApproximateBitmap;
/// use hashkit::{CellMapper, HashFamily};
///
/// let mut ab = ApproximateBitmap::new(
///     1 << 12, 4, HashFamily::default_independent(), CellMapper::for_columns(10));
/// ab.insert(3, 7);
/// assert!(ab.contains(3, 7));           // never a false negative
/// assert_eq!(ab.inserted(), 1);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ApproximateBitmap {
    bits: BitVec,
    k: usize,
    family: HashFamily,
    mapper: CellMapper,
    inserted: u64,
}

impl ApproximateBitmap {
    /// Creates an empty AB of `n_bits` bits with `k` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits == 0` or `k == 0`.
    pub fn new(n_bits: u64, k: usize, family: HashFamily, mapper: CellMapper) -> Self {
        assert!(n_bits > 0, "AB size must be positive");
        assert!(k > 0, "k must be positive");
        ApproximateBitmap {
            bits: BitVec::zeros(n_bits as usize),
            k,
            family,
            mapper,
            inserted: 0,
        }
    }

    /// AB size in bits (`n`).
    pub fn n_bits(&self) -> u64 {
        self.bits.len() as u64
    }

    /// Number of hash functions (`k`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The hash family in use.
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// The cell mapper in use.
    pub fn mapper(&self) -> CellMapper {
        self.mapper
    }

    /// Number of cells inserted so far (`s`).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Storage size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.size_bytes()
    }

    /// Fraction of AB bits set — the load factor driving the FP rate.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.density()
    }

    /// Expected false-positive rate given the current fill ratio:
    /// `(ones/n)^k`. Tracks the §4.1 estimate but uses the observed
    /// load, so it stays accurate for non-ideal hash families.
    pub fn expected_fp_rate(&self) -> f64 {
        self.fill_ratio().powi(self.k as i32)
    }

    /// Inserts cell `(row, col)` (Figure 3, inner loop): all k
    /// positions are computed and set.
    #[inline]
    pub fn insert(&mut self, row: u64, col: u64) {
        let mut prober = self.family.prober(row, col, self.mapper, self.n_bits());
        for _ in 0..self.k {
            let p = prober.next_position();
            self.bits.set(p as usize);
        }
        self.inserted += 1;
    }

    /// Tests cell `(row, col)`: `true` means "present with high
    /// probability", `false` means "definitely absent".
    ///
    /// Implements Figure 5's inner loop faithfully, including the
    /// `break` on the first zero bit: for a cell that is absent, the
    /// expected number of hash evaluations is ~1/(1 − fill), not k —
    /// this short-circuit is what keeps rectangular queries fast at
    /// large k.
    #[inline]
    pub fn contains(&self, row: u64, col: u64) -> bool {
        self.contains_counted(row, col).0
    }

    /// [`Self::contains`] plus the number of AB bits actually read
    /// before the verdict — at most `k`, and exactly the per-probe term
    /// of the paper's O(c·k) retrieval bound. Feeds
    /// [`crate::QueryStats::bits_read`].
    #[inline]
    pub fn contains_counted(&self, row: u64, col: u64) -> (bool, u32) {
        let mut prober = self.family.prober(row, col, self.mapper, self.n_bits());
        let mut read = 0u32;
        for _ in 0..self.k {
            let p = prober.next_position();
            read += 1;
            if !self.bits.get(p as usize) {
                return (false, read); // Figure 5 line 9: break loop
            }
        }
        (true, read)
    }

    /// Inserts every set cell of a boolean matrix (Figure 3).
    pub fn insert_matrix(&mut self, m: &BoolMatrix) {
        for (row, col) in m.iter_set() {
            self.insert(row as u64, col as u64);
        }
    }

    /// Retrieves an arbitrary cell subset `Q = {(r_1,c_1), …}` (Figure
    /// 5): returns one bool per queried cell, in order. Cost is O(|Q|·k)
    /// — the paper's O(c) direct access.
    pub fn retrieve<I: IntoIterator<Item = (u64, u64)>>(&self, cells: I) -> Vec<bool> {
        cells
            .into_iter()
            .map(|(r, c)| self.contains(r, c))
            .collect()
    }

    /// Read-only view of the underlying bit array.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Sets a raw AB bit directly — used by [`crate::CountingAb::freeze`]
    /// and the deserializer, where positions are copied rather than
    /// re-hashed.
    pub(crate) fn set_raw_bit(&mut self, i: usize) {
        self.bits.set(i);
    }

    /// Restores the insertion count alongside raw-bit copies.
    pub(crate) fn set_inserted(&mut self, s: u64) {
        self.inserted = s;
    }

    /// Reassembles an AB from its stored pieces (deserialization).
    pub(crate) fn from_parts(
        bits: BitVec,
        k: usize,
        family: HashFamily,
        mapper: CellMapper,
        inserted: u64,
    ) -> Self {
        assert!(!bits.is_empty(), "AB size must be positive");
        assert!(k > 0, "k must be positive");
        ApproximateBitmap {
            bits,
            k,
            family,
            mapper,
            inserted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ab(n: u64, k: usize) -> ApproximateBitmap {
        ApproximateBitmap::new(
            n,
            k,
            HashFamily::default_independent(),
            CellMapper::for_columns(16),
        )
    }

    #[test]
    fn no_false_negatives_ever() {
        // Tiny AB, heavy load: false positives abound, negatives never.
        let mut ab = small_ab(64, 2);
        let cells: Vec<(u64, u64)> = (0..20).map(|i| (i, i % 16)).collect();
        for &(r, c) in &cells {
            ab.insert(r, c);
        }
        for &(r, c) in &cells {
            assert!(ab.contains(r, c), "false negative at ({r},{c})");
        }
    }

    #[test]
    fn empty_ab_contains_nothing() {
        let ab = small_ab(1 << 10, 3);
        assert!(!ab.contains(0, 0));
        assert!(!ab.contains(99, 5));
        assert_eq!(ab.fill_ratio(), 0.0);
    }

    #[test]
    fn insert_tracks_count_and_fill() {
        let mut ab = small_ab(1 << 12, 4);
        for i in 0..100 {
            ab.insert(i, 0);
        }
        assert_eq!(ab.inserted(), 100);
        assert!(ab.fill_ratio() > 0.0 && ab.fill_ratio() < 0.2);
    }

    #[test]
    fn retrieve_orders_results() {
        let mut ab = small_ab(1 << 12, 3);
        ab.insert(1, 2);
        ab.insert(5, 3);
        let t = ab.retrieve([(1, 2), (2, 2), (5, 3)]);
        assert!(t[0]);
        assert!(t[2]);
        // (2,2) is almost certainly absent in a near-empty 4096-bit AB.
        assert!(!t[1]);
    }

    #[test]
    fn insert_matrix_covers_all_cells() {
        let m = BoolMatrix::paper_example();
        let mut ab = small_ab(1 << 10, 3);
        ab.insert_matrix(&m);
        assert_eq!(ab.inserted(), m.count_ones() as u64);
        for (r, c) in m.iter_set() {
            assert!(ab.contains(r as u64, c as u64));
        }
    }

    #[test]
    fn paper_section31_worked_example() {
        // §3.1: F(i,j) = concatenate(i,j) → here the shifted mapper;
        // k = 1, H = x mod 32 → circular hash on a 32-bit AB.
        use hashkit::HashKind;
        let mut ab = ApproximateBitmap::new(
            32,
            1,
            HashFamily::Independent(vec![HashKind::Circular]),
            CellMapper::Shifted { shift: 3 },
        );
        let m = BoolMatrix::paper_example();
        ab.insert_matrix(&m);
        // Q1 (row 3 of the paper, index 2): exact answer all-zero; the
        // AB may report false positives but never misses.
        let t1 = ab.retrieve((0..6).map(|c| (2u64, c)));
        // Guaranteed: no false negatives for genuinely set cells.
        for (r, c) in m.iter_set() {
            assert!(ab.contains(r as u64, c as u64));
        }
        // And Q1's possible positives are false ones (row is empty).
        let fp_count = t1.iter().filter(|&&b| b).count();
        assert!(fp_count <= 6);
    }

    #[test]
    fn measured_fp_rate_tracks_theory() {
        // s = 1000 cells into n = 8s bits, optimal k = 6:
        // theory FP ≈ 0.0216.
        let s = 1000u64;
        let n = 8 * s;
        let mut ab = ApproximateBitmap::new(
            crate::analysis::next_pow2(n),
            6,
            HashFamily::default_independent(),
            CellMapper::RowOnly,
        );
        for r in 0..s {
            ab.insert(r, 0);
        }
        let mut fp = 0u32;
        let probes = 20_000u64;
        for r in s..s + probes {
            if ab.contains(r, 0) {
                fp += 1;
            }
        }
        let rate = f64::from(fp) / probes as f64;
        let alpha = ab.n_bits() as f64 / s as f64;
        let theory = crate::analysis::fp_rate(6, alpha);
        assert!(
            (rate - theory).abs() < theory.max(0.005) * 1.0 + 0.01,
            "measured {rate:.4}, theory {theory:.4}"
        );
    }

    #[test]
    fn expected_fp_rate_uses_fill() {
        let mut ab = small_ab(1 << 10, 2);
        assert_eq!(ab.expected_fp_rate(), 0.0);
        for i in 0..200 {
            ab.insert(i, 1);
        }
        let f = ab.fill_ratio();
        assert!((ab.expected_fp_rate() - f * f).abs() < 1e-12);
    }

    #[test]
    fn contains_counted_bounds_reads_by_k() {
        let mut ab = small_ab(1 << 12, 4);
        ab.insert(1, 2);
        let (hit, read) = ab.contains_counted(1, 2);
        assert!(hit);
        assert_eq!(read, 4, "a present cell reads all k bits");
        let (hit, read) = ab.contains_counted(77, 9);
        assert!(!hit);
        assert!((1..=4).contains(&read), "miss short-circuits within k");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        small_ab(0, 1);
    }
}
