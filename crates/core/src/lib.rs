//! # Approximate Bitmap (AB) encoding
//!
//! A Rust reproduction of *Apaydin, Ferhatosmanoglu, Canahuate, Tosun —
//! "Approximate Encoding for Direct Access and Query Processing over
//! Compressed Bitmaps" (VLDB 2006)*.
//!
//! Run-length compressed bitmaps (WAH, BBC) answer full-column queries
//! fast but lose *direct access*: testing "is bit (row, column) set?"
//! requires scanning the compressed stream. The AB stores the set bits
//! of a bitmap table in a Bloom-style hash-addressed bit array instead:
//!
//! * any cell — and therefore any subset of rows × columns — is tested
//!   in O(k) bit probes (paper contribution 2: O(c) retrieval for a
//!   c-cell subset);
//! * **no false negatives** ever occur; false positives arrive at the
//!   controllable rate `(1 − e^{−k/α})^k` where `α` is the number of
//!   AB bits per set bit (§4.1);
//! * the encoding applies at three levels — per data set, per
//!   attribute, per column (§3.2) — with closed-form size trade-offs
//!   (§4.2);
//! * parameters follow either a maximum size or a minimum precision
//!   (contribution 3).
//!
//! ## Quick start
//!
//! ```
//! use ab::{AbConfig, AbPipeline, Level};
//! use bitmap::{AttrRange, Column, RectQuery, Table};
//!
//! // A little sales table, physically ordered by date.
//! let table = Table::new(vec![
//!     Column::new("amount", (0..365).map(|d| (d * 37 % 100) as f64).collect()),
//!     Column::new("region", (0..365).map(|d| (d % 4) as f64).collect()),
//! ]);
//!
//! let pipeline = AbPipeline::builder(&table)
//!     .bins(4)
//!     .config(AbConfig::new(Level::PerAttribute).with_alpha(16))
//!     .keep_exact(true)
//!     .build();
//!
//! // "last week's rows where amount falls in the top bin"
//! let q = RectQuery::new(vec![AttrRange::new(0, 3, 3)], 358, 364);
//! let fast_approximate = pipeline.query_approx(&q); // 100% recall
//! let exact = pipeline.query_exact(&q);             // pruned second step
//! assert!(exact.iter().all(|r| fast_approximate.contains(r)));
//! ```
//!
//! ## Module map
//!
//! | paper section | module |
//! |---|---|
//! | §3.1–3.2 insertion/encoding | [`encoding`] |
//! | §3.2 levels | [`level`] |
//! | §3.3 query processing (Figs 5, 7) | [`query`] |
//! | §4 analysis (FP rate, sizing) | [`analysis`] |
//! | §1 exact second step | [`exact`] |
//! | contribution 3 parameter modes | [`config`] |
//! | updates (future work in §7) | [`counting`] |
//! | persistence | [`io`] |

#![warn(missing_docs)]

pub mod analysis;
pub mod blocked;
pub mod bloom;
pub mod builder;
pub mod config;
pub mod counting;
pub mod encoding;
pub mod exact;
pub mod hier;
pub mod hybrid;
pub mod io;
pub mod kernel;
pub mod level;
pub mod planner;
pub mod query;

pub use analysis::{
    ab_bits, ab_size_bytes, alpha_for_precision, choose_level, fp_rate, fp_rate_exact, level_sizes,
    optimal_k, precision, AbParams, Level, LevelSizes,
};
pub use blocked::BlockedAb;
pub use bloom::BloomFilter;
pub use builder::{AbPipeline, AbPipelineBuilder};
pub use config::{AbConfig, Sizing};
pub use counting::CountingAb;
pub use encoding::ApproximateBitmap;
pub use exact::{execute_exact, prune_false_positives, row_matches};
pub use hier::{HierAb, HierConfig, HierLevelSpec, HierPrune};
pub use hybrid::{HybridAb, HybridBin, HybridConfig};
pub use kernel::{
    active_simd_engine, BatchRows, CacheModel, HierMode, HybridMode, KernelKind, KernelOpts,
    SimdEngine, BATCH_ROWS, MAX_BATCH_ROWS, PREFETCH_ACTIVE, SIMD_COMPILED, SIMD_WAVE,
};

pub use io::{
    crc32, from_bytes, segment_extents, shards_from_bytes, shards_from_bytes_checked,
    shards_to_bytes, to_bytes, verify, CheckedSegments, ChecksumStatus, IoError, SegmentExtent,
    SegmentHeader, SegmentReport, VerifyReport,
};
pub use level::{shard_ranges, AbIndex, AttributeMeta};
pub use planner::{calibrate, plan, plan_descent, CostModel, Engine};
pub use query::{Cell, PrecisionStats, QueryError, QueryStats};
