//! Query processing over the AB index.
//!
//! Implements the paper's two retrieval algorithms:
//!
//! * **Figure 5** — arbitrary cell-subset queries
//!   `Q = {(r_1,c_1), …, (r_l,c_l)}` in O(l·k);
//! * **Figure 7** — rectangular bitmap queries
//!   `Q = {(A_1,l_1,u_1), …, (R, r_l..r_x)}`: per row, OR the cells of
//!   each attribute interval (short-circuiting on the first hit) and
//!   AND across attributes (short-circuiting on the first empty
//!   interval).
//!
//! Because the AB has no false negatives, rectangular results have
//! 100% recall; precision is evaluated against the exact index via
//! [`PrecisionStats`].

use crate::hier::HierAb;
use crate::hybrid::HybridAb;
use crate::kernel::{HierMode, HybridMode, KernelKind, KernelOpts};
use crate::level::AbIndex;
use bitmap::RectQuery;
use serde::{Deserialize, Serialize};

/// A single cell of a cell-subset query: row + attribute + bin.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// Row identifier.
    pub row: usize,
    /// Attribute index.
    pub attribute: usize,
    /// Bin within the attribute.
    pub bin: u32,
}

impl Cell {
    /// Convenience constructor.
    pub fn new(row: usize, attribute: usize, bin: u32) -> Self {
        Cell {
            row,
            attribute,
            bin,
        }
    }
}

/// Statistics from one rectangular query execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Number of AB cell probes performed (each costs ≤ k bit reads).
    pub cells_probed: usize,
    /// Number of rows reported as (approximate) matches.
    pub rows_matched: usize,
    /// Number of AB bits actually read across all probes. The Figure 5
    /// short-circuit makes this ≤ `cells_probed × k` — the paper's
    /// O(c·k) retrieval bound, observable per query.
    pub bits_read: usize,
    /// Super-cell regions the hierarchical pyramid eliminated before
    /// the per-row kernel ran (0 when pruning was off or didn't fire).
    pub regions_pruned: u64,
    /// Rows the pyramid skipped — rows the flat scan would have
    /// probed but which never reached the kernel.
    pub rows_skipped: u64,
    /// False-positive rows the exact tier eliminated: rows the flat
    /// AB scan would have reported but whose exact-backed bins reject
    /// them (0 when the tier was off or didn't fire). The hybrid
    /// answer is always `flat answer minus exactly these rows`.
    pub fp_rows_eliminated: u64,
}

/// A rectangular query that cannot be executed against this index.
///
/// Both variants render with the phrase "out of range", matching the
/// messages the panicking entry points ([`AbIndex::execute_rect`])
/// have always produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryError {
    /// The query's row interval extends past the indexed rows.
    RowOutOfRange {
        /// Offending row id (the query's `row_hi`).
        row: usize,
        /// Number of rows the index covers.
        num_rows: usize,
    },
    /// An attribute range names a bin past the attribute's cardinality.
    BinOutOfRange {
        /// Offending attribute index.
        attribute: usize,
        /// Offending bin (the range's `hi`).
        bin: u32,
        /// The attribute's cardinality.
        cardinality: u32,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            QueryError::RowOutOfRange { row, num_rows } => {
                write!(f, "row {row} out of range {num_rows}")
            }
            QueryError::BinOutOfRange {
                attribute,
                bin,
                cardinality,
            } => {
                write!(
                    f,
                    "bin {bin} out of range {cardinality} for attribute {attribute}"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl AbIndex {
    /// Figure 5: evaluates an arbitrary cell subset, returning one
    /// boolean per cell in query order. O(c·k) where `c = cells.len()`.
    /// Runs on the default (batched) kernel; see
    /// [`Self::retrieve_cells_with_kernel`].
    pub fn retrieve_cells(&self, cells: &[Cell]) -> Vec<bool> {
        self.retrieve_cells_with_kernel(cells, KernelKind::default())
    }

    /// [`Self::retrieve_cells`] on an explicit probe engine. Verdicts
    /// are identical either way; only the memory schedule differs.
    pub fn retrieve_cells_with_kernel(&self, cells: &[Cell], kernel: KernelKind) -> Vec<bool> {
        self.retrieve_cells_with_opts(cells, kernel.into())
    }

    /// [`Self::retrieve_cells`] with full kernel options (engine and
    /// batch-depth policy).
    pub fn retrieve_cells_with_opts(&self, cells: &[Cell], opts: KernelOpts) -> Vec<bool> {
        let mut tspan = obs::span_current(match opts.kernel {
            KernelKind::Scalar => "ab.kernel.scalar",
            KernelKind::Batched => "ab.kernel.batched",
            KernelKind::Simd => "ab.kernel.simd",
        });
        if tspan.enabled() {
            tspan.annotate("cells_probed", cells.len());
        }
        // Exact-backed cells are answered from their containers (the
        // truth — an AB false positive for such a cell comes back
        // `false` here); the rest batch through the probe kernel and
        // the two verdict streams merge back into query order.
        let hybrid = match opts.hybrid {
            HybridMode::Off => None,
            HybridMode::Auto | HybridMode::Force => self.hybrid(),
        };
        if let Some(hy) = hybrid {
            let mut out = vec![false; cells.len()];
            let mut rest = Vec::new();
            let mut rest_pos = Vec::new();
            let mut exact_cells = 0u64;
            for (i, c) in cells.iter().enumerate() {
                match hy.backing(c.attribute, c.bin) {
                    Some(hb) => {
                        assert!(
                            c.row < self.num_rows(),
                            "row {} out of range {}",
                            c.row,
                            self.num_rows()
                        );
                        out[i] = hb.contains(c.row);
                        exact_cells += 1;
                    }
                    None => {
                        rest.push(*c);
                        rest_pos.push(i);
                    }
                }
            }
            obs::counter!("hybrid.cells_exact").add(exact_cells);
            if !rest.is_empty() {
                for (i, v) in rest_pos
                    .into_iter()
                    .zip(self.retrieve_cells_base(&rest, opts))
                {
                    out[i] = v;
                }
            }
            return out;
        }
        self.retrieve_cells_base(cells, opts)
    }

    /// The probe-kernel dispatch shared by the plain path and the
    /// exact tier's unbacked remainder.
    fn retrieve_cells_base(&self, cells: &[Cell], opts: KernelOpts) -> Vec<bool> {
        match opts.kernel {
            KernelKind::Scalar => {
                obs::counter!("kernel.scalar_fallbacks").inc();
                cells
                    .iter()
                    .map(|c| self.test_cell(c.row, c.attribute, c.bin))
                    .collect()
            }
            KernelKind::Batched | KernelKind::Simd => {
                crate::kernel::retrieve_cells_waves(self, cells, opts)
            }
        }
    }

    /// Figure 7: evaluates a rectangular query over the AB, returning
    /// the row identifiers reported as matches (superset of the exact
    /// answer; never misses a true match).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rows or bins; use
    /// [`Self::try_execute_rect`] for a typed error instead.
    pub fn execute_rect(&self, query: &RectQuery) -> Vec<usize> {
        self.execute_rect_with_stats(query).0
    }

    /// [`Self::execute_rect`] plus probe-count statistics.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rows or bins; use
    /// [`Self::try_execute_rect_with_stats`] for a typed error instead.
    pub fn execute_rect_with_stats(&self, query: &RectQuery) -> (Vec<usize>, QueryStats) {
        match self.try_execute_rect_with_stats(query) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Self::execute_rect`]: returns a [`QueryError`] for
    /// out-of-range rows or bins instead of panicking.
    pub fn try_execute_rect(&self, query: &RectQuery) -> Result<Vec<usize>, QueryError> {
        self.try_execute_rect_with_stats(query)
            .map(|(rows, _)| rows)
    }

    /// Fallible [`Self::execute_rect_with_stats`]. Rejected queries
    /// count into `ab.query.rejected`; executed ones flush their
    /// [`QueryStats`] into the `ab.query.*` counters once, so the
    /// registry totals equal the sum of the returned stats exactly.
    /// Runs on the default (batched) kernel.
    pub fn try_execute_rect_with_stats(
        &self,
        query: &RectQuery,
    ) -> Result<(Vec<usize>, QueryStats), QueryError> {
        self.try_execute_rect_with_stats_kernel(query, KernelKind::default())
    }

    /// [`Self::try_execute_rect`] on an explicit probe engine.
    pub fn try_execute_rect_with_kernel(
        &self,
        query: &RectQuery,
        kernel: KernelKind,
    ) -> Result<Vec<usize>, QueryError> {
        self.try_execute_rect_with_stats_kernel(query, kernel)
            .map(|(rows, _)| rows)
    }

    /// [`Self::try_execute_rect`] with full kernel options.
    pub fn try_execute_rect_with_opts(
        &self,
        query: &RectQuery,
        opts: KernelOpts,
    ) -> Result<Vec<usize>, QueryError> {
        self.try_execute_rect_with_stats_opts(query, opts)
            .map(|(rows, _)| rows)
    }

    /// [`Self::try_execute_rect_with_stats`] on an explicit probe
    /// engine. Every kernel returns bit-identical rows and
    /// [`QueryStats`] (the differential tests in
    /// `tests/kernel_differential.rs` enforce this); only the memory
    /// access schedule differs.
    pub fn try_execute_rect_with_stats_kernel(
        &self,
        query: &RectQuery,
        kernel: KernelKind,
    ) -> Result<(Vec<usize>, QueryStats), QueryError> {
        self.try_execute_rect_with_stats_opts(query, kernel.into())
    }

    /// [`Self::try_execute_rect_with_stats`] with full kernel options
    /// (engine and batch-depth policy).
    pub fn try_execute_rect_with_stats_opts(
        &self,
        query: &RectQuery,
        opts: KernelOpts,
    ) -> Result<(Vec<usize>, QueryStats), QueryError> {
        if query.row_hi >= self.num_rows() {
            obs::counter!("ab.query.rejected").inc();
            return Err(QueryError::RowOutOfRange {
                row: query.row_hi,
                num_rows: self.num_rows(),
            });
        }
        for r in &query.ranges {
            let card = self.attributes()[r.attribute].cardinality;
            if r.hi >= card {
                obs::counter!("ab.query.rejected").inc();
                return Err(QueryError::BinOutOfRange {
                    attribute: r.attribute,
                    bin: r.hi,
                    cardinality: card,
                });
            }
        }
        let _timer = obs::span("ab.query.us");
        // Kernel-stage trace span: attaches under whatever request
        // span the caller entered on this thread (no-op otherwise).
        let mut tspan = obs::span_current(match opts.kernel {
            KernelKind::Scalar => "ab.kernel.scalar",
            KernelKind::Batched => "ab.kernel.batched",
            KernelKind::Simd => "ab.kernel.simd",
        });
        // Hierarchical pruning engages only when the caller asked for
        // it, a pyramid is attached, the query constrains at least one
        // attribute (a vacuous AND matches every row — nothing to
        // prune), and the row interval is non-degenerate.
        let hier = match opts.hier {
            HierMode::Off => None,
            HierMode::Auto | HierMode::Force => self.hier().filter(|h| {
                !query.ranges.is_empty()
                    && query.row_lo <= query.row_hi
                    && (opts.hier == HierMode::Force || crate::planner::plan_descent(h, query))
            }),
        };
        // The exact tier engages under the same preconditions, when it
        // backs at least one bin the query touches (Auto) or
        // unconditionally (Force). It composes with hier: pruned
        // intervals dispatch to the hybrid kernel instead of the flat
        // one.
        let hybrid = match opts.hybrid {
            HybridMode::Off => None,
            HybridMode::Auto | HybridMode::Force => self.hybrid().filter(|hy| {
                !query.ranges.is_empty()
                    && query.row_lo <= query.row_hi
                    && (opts.hybrid == HybridMode::Force || hy.covers_any(query))
            }),
        };
        if hybrid.is_some() {
            obs::counter!("hybrid.queries").inc();
        }
        let (rows, stats, short_circuits) = match (hier, hybrid) {
            (Some(h), hy) => self.execute_rect_hier(h, hy, query, opts),
            (None, Some(hy)) => self.execute_rect_hybrid(hy, query, opts),
            (None, None) => self.execute_rect_flat(query, opts),
        };
        if tspan.enabled() {
            tspan.annotate("cells_probed", stats.cells_probed);
            tspan.annotate("bits_read", stats.bits_read);
            tspan.annotate("rows_matched", stats.rows_matched);
            if stats.regions_pruned > 0 {
                tspan.annotate("regions_pruned", stats.regions_pruned as usize);
                tspan.annotate("rows_skipped", stats.rows_skipped as usize);
            }
            if stats.fp_rows_eliminated > 0 {
                tspan.annotate("fp_rows_eliminated", stats.fp_rows_eliminated as usize);
            }
        }
        obs::counter!("ab.query.executed").inc();
        obs::counter!("ab.query.cells_probed").add(stats.cells_probed as u64);
        obs::counter!("ab.query.bits_read").add(stats.bits_read as u64);
        obs::counter!("ab.query.rows_matched").add(stats.rows_matched as u64);
        obs::counter!("ab.query.short_circuit_hits").add(short_circuits);
        obs::counter!("hybrid.fp_rows_eliminated").add(stats.fp_rows_eliminated);
        Ok((rows, stats))
    }

    /// One flat (un-pruned) kernel dispatch: the engine match shared
    /// by the direct path and each surviving hier sub-interval (which
    /// must not re-enter the public path — stats and trace counters
    /// flush exactly once per query).
    fn execute_rect_flat(
        &self,
        query: &RectQuery,
        opts: KernelOpts,
    ) -> (Vec<usize>, QueryStats, u64) {
        match opts.kernel {
            KernelKind::Scalar => {
                obs::counter!("kernel.scalar_fallbacks").inc();
                self.execute_rect_scalar(query)
            }
            KernelKind::Batched | KernelKind::Simd => {
                crate::kernel::execute_rect_waves(self, query, opts)
            }
        }
    }

    /// The pruned execution path: walk the pyramid coarse-to-fine,
    /// then run the flat kernel over each surviving row interval and
    /// concatenate (intervals are ascending and disjoint, so rows come
    /// out in the flat scan's order). Level-AB probes are not counted
    /// into `cells_probed` — that field keeps meaning "base-AB cell
    /// probes", so pruning can only decrease it.
    fn execute_rect_hier(
        &self,
        hier: &HierAb,
        hybrid: Option<&HybridAb>,
        query: &RectQuery,
        opts: KernelOpts,
    ) -> (Vec<usize>, QueryStats, u64) {
        let prune = hier.prune(query);
        obs::counter!("hier.regions_pruned").add(prune.regions_pruned);
        obs::counter!("hier.rows_skipped").add(prune.rows_skipped);
        let mut rows = Vec::new();
        let mut stats = QueryStats {
            regions_pruned: prune.regions_pruned,
            rows_skipped: prune.rows_skipped,
            ..QueryStats::default()
        };
        let mut short_circuits = 0u64;
        for &(lo, hi) in &prune.intervals {
            let sub = RectQuery::new(query.ranges.clone(), lo, hi);
            let (r, s, c) = match hybrid {
                Some(hy) => self.execute_rect_hybrid(hy, &sub, opts),
                None => self.execute_rect_flat(&sub, opts),
            };
            rows.extend(r);
            stats.cells_probed += s.cells_probed;
            stats.bits_read += s.bits_read;
            stats.fp_rows_eliminated += s.fp_rows_eliminated;
            short_circuits += c;
        }
        stats.rows_matched = rows.len();
        (rows, stats, short_circuits)
    }

    /// The exact-tier execution path for one row interval. Backed bins
    /// are answered from their Roaring containers word-at-a-time —
    /// zero hash probes, zero false positives — and merged with AB
    /// probes for the unbacked bins. When every bin of every range is
    /// backed the whole query resolves by word-parallel mask algebra;
    /// otherwise a per-row loop combines container verdicts with
    /// Figure 7 short-circuit probing of the remaining bins.
    ///
    /// Alongside the hybrid (exact-where-possible) verdict the kernel
    /// tracks what the flat AB scan would have said, via the companion
    /// false-positive containers (`exact ∪ fp` = AB verdict, see
    /// [`crate::hybrid`]) — the divergence is
    /// `QueryStats::fp_rows_eliminated`, at zero extra probe cost.
    /// `cells_probed`/`bits_read` keep meaning "base-AB cell probes":
    /// container lookups count as neither.
    fn execute_rect_hybrid(
        &self,
        hy: &HybridAb,
        query: &RectQuery,
        opts: KernelOpts,
    ) -> (Vec<usize>, QueryStats, u64) {
        let _ = opts;
        let mut stats = QueryStats::default();
        if query.row_lo > query.row_hi {
            return (Vec::new(), stats, 0);
        }
        if query.ranges.is_empty() {
            // Vacuous AND: every row matches, identical to flat.
            let rows: Vec<usize> = (query.row_lo..=query.row_hi).collect();
            stats.rows_matched = rows.len();
            return (rows, stats, 0);
        }
        let (row_lo, row_hi) = (query.row_lo, query.row_hi);
        let plans: Vec<_> = query
            .ranges
            .iter()
            .map(|r| hy.plan_range(r.attribute, r.lo, r.hi, row_lo, row_hi))
            .collect();

        if plans.iter().all(|p| p.unbacked.is_empty()) {
            // Fully backed: word-parallel AND across ranges, for both
            // the exact verdict and the flat-AB shadow.
            let mut exact = plans[0].exact.clone();
            let mut flat = plans[0].flat.clone();
            for p in &plans[1..] {
                for (d, s) in exact.iter_mut().zip(&p.exact) {
                    *d &= s;
                }
                for (d, s) in flat.iter_mut().zip(&p.flat) {
                    *d &= s;
                }
            }
            let mut rows = Vec::new();
            for (w, word) in exact.iter().enumerate() {
                let mut word = *word;
                while word != 0 {
                    rows.push(row_lo + w * 64 + word.trailing_zeros() as usize);
                    word &= word - 1;
                }
            }
            let flat_rows: u64 = flat.iter().map(|w| w.count_ones() as u64).sum();
            stats.rows_matched = rows.len();
            stats.fp_rows_eliminated = flat_rows - rows.len() as u64;
            return (rows, stats, 0);
        }

        // Mixed: container verdicts for backed bins, Figure 7 probing
        // for the rest, per row. The flat shadow (`flat_and`) tracks
        // what the AB alone would have concluded; `exact ⊆ flat`
        // per range makes `!flat_and` imply `!hyb_and`, so the AND
        // short-circuit stays safe for both.
        let mut rows = Vec::new();
        let mut short_circuits = 0u64;
        for row in row_lo..=row_hi {
            let i = row - row_lo;
            let (mut hyb_and, mut flat_and) = (true, true);
            for (range, plan) in query.ranges.iter().zip(&plans) {
                let bit = |m: &[u64]| m[i / 64] >> (i % 64) & 1 == 1;
                let mut hyb_or = bit(&plan.exact);
                let mut flat_or = bit(&plan.flat);
                if !hyb_or {
                    for &bin in &plan.unbacked {
                        stats.cells_probed += 1;
                        let (hit, read) = self.test_cell_counted(row, range.attribute, bin);
                        stats.bits_read += read as usize;
                        if hit {
                            hyb_or = true;
                            flat_or = true;
                            short_circuits += u64::from(Some(&bin) != plan.unbacked.last());
                            break; // Figure 7 OR short-circuit
                        }
                    }
                }
                hyb_and &= hyb_or;
                flat_and &= flat_or;
                if !flat_and {
                    break; // AND short-circuit (both verdicts settled)
                }
            }
            if hyb_and {
                rows.push(row);
            } else if flat_and {
                stats.fp_rows_eliminated += 1;
            }
        }
        stats.rows_matched = rows.len();
        (rows, stats, short_circuits)
    }

    /// The reference row-at-a-time Figure 7 loop, kept verbatim as the
    /// semantic ground truth the batched kernel is differentially
    /// tested against. Returns `(rows, stats, or_short_circuits)`.
    fn execute_rect_scalar(&self, query: &RectQuery) -> (Vec<usize>, QueryStats, u64) {
        let mut rows = Vec::new();
        let mut stats = QueryStats::default();
        let mut short_circuits = 0u64;
        for row in query.row_lo..=query.row_hi {
            let mut andpart = true;
            for range in &query.ranges {
                let mut orpart = false;
                for bin in range.lo..=range.hi {
                    stats.cells_probed += 1;
                    let (hit, read) = self.test_cell_counted(row, range.attribute, bin);
                    stats.bits_read += read as usize;
                    if hit {
                        orpart = true;
                        short_circuits += u64::from(bin < range.hi);
                        break; // Figure 7 line 14-15: OR short-circuit
                    }
                }
                if !orpart {
                    andpart = false;
                    break; // Figure 7 line 17-19: AND short-circuit
                }
            }
            if andpart {
                rows.push(row);
            }
        }
        stats.rows_matched = rows.len();
        (rows, stats, short_circuits)
    }

    /// Figure 7 with an explicit row list: the paper's query definition
    /// gives the `R` component as a list `(R, r_l, …, r_x)` — e.g. the
    /// intro's "every Monday for the last 3 months" — not necessarily a
    /// contiguous range. Returns the subset of `rows` that
    /// (approximately) satisfies every attribute interval, in input
    /// order. Cost is O(|rows| · probes), independent of the table
    /// size.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range rows or bins.
    pub fn execute_rows(&self, rows: &[usize], ranges: &[bitmap::AttrRange]) -> Vec<usize> {
        for r in ranges {
            let card = self.attributes()[r.attribute].cardinality;
            assert!(r.hi < card, "bin {} out of range {card}", r.hi);
        }
        rows.iter()
            .copied()
            .filter(|&row| {
                assert!(row < self.num_rows(), "row {row} out of range");
                ranges.iter().all(|range| {
                    (range.lo..=range.hi).any(|bin| self.test_cell(row, range.attribute, bin))
                })
            })
            .collect()
    }
}

/// Accuracy of an approximate answer against the exact one.
///
/// The experiments report *precision* = |exact ∩ approx| / |approx|
/// (§5.3: sampled queries guarantee a non-empty exact answer) and the
/// no-false-negative guarantee makes *recall* always 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrecisionStats {
    /// Rows in both answers.
    pub true_positives: usize,
    /// Rows only in the approximate answer.
    pub false_positives: usize,
    /// Rows only in the exact answer (must be 0 for a correct AB).
    pub false_negatives: usize,
}

impl PrecisionStats {
    /// Compares sorted-or-unsorted row lists.
    pub fn compare(approx: &[usize], exact: &[usize]) -> Self {
        use std::collections::HashSet;
        let ea: HashSet<usize> = exact.iter().copied().collect();
        let aa: HashSet<usize> = approx.iter().copied().collect();
        let tp = aa.intersection(&ea).count();
        PrecisionStats {
            true_positives: tp,
            false_positives: aa.len() - tp,
            false_negatives: ea.len() - tp,
        }
    }

    /// Precision = TP / (TP + FP); 0 when the approximate answer is
    /// empty and the exact one is not, 1 when both are empty.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            if self.false_negatives == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); 1 when the exact answer is empty.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Level;
    use crate::config::AbConfig;
    use bitmap::{AttrRange, BinnedColumn, BinnedTable, BitmapIndex, Encoding};

    fn table() -> BinnedTable {
        BinnedTable::new(vec![
            BinnedColumn::new("A", vec![0, 1, 2, 0, 1, 1, 0, 2], 3),
            BinnedColumn::new("B", vec![2, 0, 1, 1, 0, 1, 0, 2], 3),
            BinnedColumn::new("C", vec![1, 1, 0, 2, 2, 0, 1, 0], 3),
        ])
    }

    fn big_index(level: Level) -> (BinnedTable, AbIndex) {
        // Deterministic pseudo-random table, large enough for precision
        // statistics.
        let n = 2000usize;
        let mk = |seed: u64, card: u32| -> Vec<u32> {
            (0..n)
                .map(|i| (hashkit::splitmix64(seed ^ i as u64) % card as u64) as u32)
                .collect()
        };
        let t = BinnedTable::new(vec![
            BinnedColumn::new("A", mk(1, 10), 10),
            BinnedColumn::new("B", mk(2, 10), 10),
        ]);
        let idx = AbIndex::build(&t, &AbConfig::new(level).with_alpha(8));
        (t, idx)
    }

    #[test]
    fn retrieve_cells_matches_table_positives() {
        let t = table();
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(16));
        let cells: Vec<Cell> = (0..8)
            .map(|r| Cell::new(r, 0, t.column(0).bins[r]))
            .collect();
        assert!(idx.retrieve_cells(&cells).iter().all(|&b| b));
    }

    #[test]
    fn rect_query_q3_example() {
        // Paper Q3: A ∈ bins {0,1}, rows 3..=7 (0-based of "4..8").
        let t = table();
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(32));
        let exact = BitmapIndex::build(&t, Encoding::Equality);
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 1)], 3, 7);
        let approx = idx.execute_rect(&q);
        let want = exact.evaluate_rows(&q);
        // Superset with no misses.
        for r in &want {
            assert!(approx.contains(r), "missed exact row {r}");
        }
    }

    #[test]
    fn rect_query_recall_is_one_all_levels() {
        for level in [Level::PerDataset, Level::PerAttribute, Level::PerColumn] {
            let (t, idx) = big_index(level);
            let exact = BitmapIndex::build(&t, Encoding::Equality);
            let q = RectQuery::new(
                vec![AttrRange::new(0, 2, 5), AttrRange::new(1, 0, 3)],
                100,
                1500,
            );
            let approx = idx.execute_rect(&q);
            let want = exact.evaluate_rows(&q);
            let stats = PrecisionStats::compare(&approx, &want);
            assert_eq!(stats.false_negatives, 0, "{level:?} missed rows");
            assert_eq!(stats.recall(), 1.0);
            assert!(
                stats.precision() > 0.5,
                "{level:?} precision {:.3} too low",
                stats.precision()
            );
        }
    }

    #[test]
    fn rect_query_precision_grows_with_alpha() {
        let n = 2000usize;
        let mk = |seed: u64| -> Vec<u32> {
            (0..n)
                .map(|i| (hashkit::splitmix64(seed ^ i as u64) % 10) as u32)
                .collect()
        };
        let t = BinnedTable::new(vec![
            BinnedColumn::new("A", mk(11), 10),
            BinnedColumn::new("B", mk(12), 10),
        ]);
        let exact = BitmapIndex::build(&t, Encoding::Equality);
        let q = RectQuery::new(
            vec![AttrRange::new(0, 0, 2), AttrRange::new(1, 4, 6)],
            0,
            1999,
        );
        let want = exact.evaluate_rows(&q);
        let mut prev = 0.0;
        for alpha in [2u64, 8, 32] {
            let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(alpha));
            let approx = idx.execute_rect(&q);
            let p = PrecisionStats::compare(&approx, &want).precision();
            assert!(
                p >= prev - 0.05,
                "precision should not fall as α grows: α={alpha}, {p} < {prev}"
            );
            prev = p;
        }
        assert!(prev > 0.9, "α=32 precision only {prev}");
    }

    #[test]
    fn stats_count_probes_with_short_circuit() {
        let t = table();
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(16));
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 2)], 0, 7);
        let (rows, stats) = idx.execute_rect_with_stats(&q);
        // Every row matches some bin of A (full range): 8 matches.
        assert_eq!(rows.len(), 8);
        assert_eq!(stats.rows_matched, 8);
        // Short-circuiting probes at most 3 bins per row.
        assert!(stats.cells_probed <= 24);
        assert!(stats.cells_probed >= 8);
    }

    #[test]
    fn execute_rows_matches_rect_on_contiguous_lists() {
        let (_, idx) = big_index(Level::PerAttribute);
        let ranges = vec![AttrRange::new(0, 2, 5)];
        let q = RectQuery::new(ranges.clone(), 100, 200);
        let via_rect = idx.execute_rect(&q);
        let list: Vec<usize> = (100..=200).collect();
        assert_eq!(idx.execute_rows(&list, &ranges), via_rect);
    }

    #[test]
    fn execute_rows_handles_scattered_rows() {
        let (t, idx) = big_index(Level::PerColumn);
        let exact = BitmapIndex::build(&t, Encoding::Equality);
        let mondays: Vec<usize> = (0..t.num_rows()).step_by(7).collect();
        let ranges = vec![AttrRange::new(1, 0, 4)];
        let got = idx.execute_rows(&mondays, &ranges);
        // No false negatives against the exact per-row check.
        for &row in &mondays {
            let truly = (0..=4).contains(&t.column(1).bins[row]);
            if truly {
                assert!(got.contains(&row), "missed true row {row}");
            }
        }
        // And all answers come from the requested list.
        assert!(got.iter().all(|r| mondays.contains(r)));
        let _ = exact;
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn execute_rows_validates_rows() {
        let (_, idx) = big_index(Level::PerAttribute);
        idx.execute_rows(&[usize::MAX], &[]);
    }

    #[test]
    fn precision_stats_arithmetic() {
        let s = PrecisionStats::compare(&[1, 2, 3, 4], &[2, 3]);
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.false_positives, 2);
        assert_eq!(s.false_negatives, 0);
        assert!((s.precision() - 0.5).abs() < 1e-12);
        assert_eq!(s.recall(), 1.0);

        let empty = PrecisionStats::compare(&[], &[]);
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);

        let miss = PrecisionStats::compare(&[], &[1]);
        assert_eq!(miss.precision(), 0.0);
        assert_eq!(miss.recall(), 0.0);
    }

    #[test]
    fn try_execute_returns_typed_errors() {
        let t = table();
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute));
        assert_eq!(
            idx.try_execute_rect(&RectQuery::new(vec![], 0, 8)),
            Err(QueryError::RowOutOfRange {
                row: 8,
                num_rows: 8
            })
        );
        assert_eq!(
            idx.try_execute_rect(&RectQuery::new(vec![AttrRange::new(1, 0, 5)], 0, 7)),
            Err(QueryError::BinOutOfRange {
                attribute: 1,
                bin: 5,
                cardinality: 3
            })
        );
        // The error messages keep the historical "out of range" phrase.
        for e in [
            QueryError::RowOutOfRange {
                row: 8,
                num_rows: 8,
            },
            QueryError::BinOutOfRange {
                attribute: 1,
                bin: 5,
                cardinality: 3,
            },
        ] {
            assert!(e.to_string().contains("out of range"), "{e}");
        }
        // And a valid query still goes through the fallible path.
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 2)], 0, 7);
        assert_eq!(idx.try_execute_rect(&q).unwrap(), idx.execute_rect(&q));
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn rejected_queries_are_counted() {
        let t = table();
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute));
        let c = obs::global().counter("ab.query.rejected");
        let before = c.get();
        let _ = idx.try_execute_rect(&RectQuery::new(vec![], 0, 999));
        let _ = idx.try_execute_rect(&RectQuery::new(vec![AttrRange::new(0, 0, 9)], 0, 7));
        assert!(c.get() >= before + 2);
    }

    #[test]
    fn stats_bits_read_bounded_by_probes_times_k() {
        let (_, idx) = big_index(Level::PerAttribute);
        let q = RectQuery::new(
            vec![AttrRange::new(0, 2, 5), AttrRange::new(1, 0, 3)],
            0,
            1999,
        );
        let (_, stats) = idx.execute_rect_with_stats(&q);
        assert!(stats.bits_read >= stats.cells_probed, "≥1 bit per probe");
        assert!(
            stats.bits_read <= stats.cells_probed * idx.max_k(),
            "bits_read {} exceeds c·k = {}·{}",
            stats.bits_read,
            stats.cells_probed,
            idx.max_k()
        );
    }

    #[test]
    fn hier_force_returns_identical_rows_with_fewer_probes() {
        use crate::hier::{HierConfig, HierLevelSpec};
        use crate::kernel::{HierMode, KernelOpts};
        // Clustered data so the pyramid actually prunes.
        let t = BinnedTable::new(vec![BinnedColumn::new(
            "v",
            (0..2048u32).map(|i| i / 256).collect(),
            8,
        )]);
        let mut idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(32));
        idx.ensure_hier(&HierConfig {
            levels: vec![HierLevelSpec {
                row_span: 64,
                bin_group: 2,
            }],
        });
        for kernel in [KernelKind::Scalar, KernelKind::Batched, KernelKind::Simd] {
            let q = RectQuery::new(vec![AttrRange::new(0, 0, 0)], 0, 2047);
            let flat = idx
                .try_execute_rect_with_stats_opts(&q, KernelOpts::new(kernel))
                .unwrap();
            let hier = idx
                .try_execute_rect_with_stats_opts(
                    &q,
                    KernelOpts::new(kernel).with_hier(HierMode::Force),
                )
                .unwrap();
            assert_eq!(hier.0, flat.0, "{kernel} rows differ");
            assert_eq!(flat.1.regions_pruned, 0);
            assert!(hier.1.regions_pruned > 0, "{kernel} pruned nothing");
            assert!(
                hier.1.cells_probed < flat.1.cells_probed,
                "{kernel} probes not reduced"
            );
        }
        // Off leaves the flat path untouched even with a pyramid.
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 0)], 0, 2047);
        let off = idx
            .try_execute_rect_with_stats_opts(&q, KernelOpts::new(KernelKind::Batched))
            .unwrap();
        assert_eq!(off.1.regions_pruned, 0);
    }

    /// Exact tier over clustered data, alpha low enough (high FP rate)
    /// that the flat scan reports false positives the tier eliminates.
    fn hybrid_fixture() -> (bitmap::BinnedTable, AbIndex) {
        use crate::hybrid::HybridConfig;
        let t = BinnedTable::new(vec![
            BinnedColumn::new("a", (0..2048u32).map(|i| i / 256).collect(), 8),
            BinnedColumn::new("b", (0..2048u32).map(|i| (i / 64) % 8).collect(), 8),
        ]);
        let mut idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(4));
        idx.ensure_hybrid(
            &t,
            &HybridConfig {
                min_density: 0.0,
                ..Default::default()
            },
        );
        (t, idx)
    }

    #[test]
    fn hybrid_rect_is_flat_minus_exactly_the_false_positives() {
        use crate::kernel::{HybridMode, KernelOpts};
        let (t, idx) = hybrid_fixture();
        let mut eliminated_somewhere = false;
        for (lo, hi, row_lo, row_hi) in [(0, 0, 0, 2047), (2, 5, 100, 1900), (7, 7, 512, 2047)] {
            let q = RectQuery::new(vec![AttrRange::new(0, lo, hi)], row_lo, row_hi);
            let flat = idx
                .try_execute_rect_with_stats_opts(&q, KernelOpts::new(KernelKind::Batched))
                .unwrap();
            let hyb = idx
                .try_execute_rect_with_stats_opts(
                    &q,
                    KernelOpts::new(KernelKind::Batched).with_hybrid(HybridMode::Force),
                )
                .unwrap();
            // Fully backed: the hybrid answer is the exact answer.
            let truth: Vec<usize> = (row_lo..=row_hi)
                .filter(|&r| (lo..=hi).contains(&t.column(0).bins[r]))
                .collect();
            assert_eq!(hyb.0, truth, "hybrid answer not exact");
            assert_eq!(flat.1.fp_rows_eliminated, 0);
            assert_eq!(
                flat.0.len() - hyb.0.len(),
                hyb.1.fp_rows_eliminated as usize,
                "fp accounting broken"
            );
            assert_eq!(hyb.1.cells_probed, 0, "backed bins must not probe the AB");
            eliminated_somewhere |= hyb.1.fp_rows_eliminated > 0;
            // Every true row survives (no false negatives) and the
            // hybrid rows are a subset of the flat rows.
            assert!(truth.iter().all(|r| flat.0.contains(r)));
            assert!(hyb.0.iter().all(|r| flat.0.contains(r)));
        }
        assert!(
            eliminated_somewhere,
            "alpha 4 should produce false positives for the tier to eliminate"
        );
    }

    #[test]
    fn hybrid_mixed_backed_and_unbacked_ranges_agree_with_per_row_truth() {
        use crate::hybrid::HybridConfig;
        use crate::kernel::{HybridMode, KernelOpts};
        // Back only attribute 0 (attribute 1 stays on the AB) by
        // building the tier against a single-column view, then
        // re-attaching: simplest is a config that backs nothing and a
        // manual attach — instead, build with min_density 0 and strip
        // bins of attribute 1.
        let t = BinnedTable::new(vec![
            BinnedColumn::new("a", (0..2048u32).map(|i| i / 256).collect(), 8),
            BinnedColumn::new("b", (0..2048u32).map(|i| (i * 7) % 8).collect(), 8),
        ]);
        let mut idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(4));
        let full = crate::hybrid::HybridAb::build(
            &idx,
            &t,
            &HybridConfig {
                min_density: 0.0,
                ..Default::default()
            },
        );
        let partial: Vec<_> = full
            .bins()
            .iter()
            .filter(|b| b.attribute() == 0)
            .map(|b| {
                (
                    b.attribute() as u32,
                    b.bin(),
                    b.exact().clone(),
                    b.fp().clone(),
                )
            })
            .collect();
        idx.attach_hybrid(crate::hybrid::HybridAb::from_serialized(
            full.config(),
            full.num_rows(),
            full.total_bins(),
            partial,
        ));
        for kernel in [KernelKind::Scalar, KernelKind::Batched, KernelKind::Simd] {
            let q = RectQuery::new(
                vec![AttrRange::new(0, 1, 3), AttrRange::new(1, 2, 6)],
                50,
                2000,
            );
            let flat = idx
                .try_execute_rect_with_stats_opts(&q, KernelOpts::new(kernel))
                .unwrap();
            let hyb = idx
                .try_execute_rect_with_stats_opts(
                    &q,
                    KernelOpts::new(kernel).with_hybrid(HybridMode::Auto),
                )
                .unwrap();
            // Attribute 0's verdict is exact, attribute 1's stays the
            // AB's: the hybrid rows are the flat rows minus flat rows
            // whose attribute-0 verdict was a false positive.
            let expect: Vec<usize> = flat
                .0
                .iter()
                .copied()
                .filter(|&r| (1..=3).contains(&t.column(0).bins[r]))
                .collect();
            assert_eq!(hyb.0, expect, "{kernel} mixed-path rows wrong");
            assert_eq!(
                flat.0.len() - hyb.0.len(),
                hyb.1.fp_rows_eliminated as usize,
                "{kernel} fp accounting broken"
            );
            assert!(
                hyb.1.cells_probed > 0,
                "{kernel} unbacked range must still probe"
            );
            // No true row is ever dropped.
            for &r in &hyb.0 {
                assert!((1..=3).contains(&t.column(0).bins[r]));
            }
        }
    }

    #[test]
    fn hybrid_composes_with_hier_pruning() {
        use crate::hier::{HierConfig, HierLevelSpec};
        use crate::hybrid::HybridConfig;
        use crate::kernel::{HierMode, HybridMode, KernelOpts};
        // Alpha high enough that the pyramid's super-cells actually
        // reject regions (a high-FP base AB saturates the levels).
        let t = BinnedTable::new(vec![BinnedColumn::new(
            "v",
            (0..2048u32).map(|i| i / 256).collect(),
            8,
        )]);
        let mut idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(32));
        idx.ensure_hybrid(
            &t,
            &HybridConfig {
                min_density: 0.0,
                ..Default::default()
            },
        );
        idx.ensure_hier(&HierConfig {
            levels: vec![HierLevelSpec {
                row_span: 64,
                bin_group: 2,
            }],
        });
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 0)], 0, 2047);
        let hyb = idx
            .try_execute_rect_with_stats_opts(
                &q,
                KernelOpts::new(KernelKind::Batched).with_hybrid(HybridMode::Force),
            )
            .unwrap();
        let both = idx
            .try_execute_rect_with_stats_opts(
                &q,
                KernelOpts::new(KernelKind::Batched)
                    .with_hier(HierMode::Force)
                    .with_hybrid(HybridMode::Force),
            )
            .unwrap();
        assert_eq!(both.0, hyb.0, "hier+hybrid rows differ from hybrid");
        assert!(both.1.regions_pruned > 0, "pyramid did not prune");
        assert!(
            both.1.fp_rows_eliminated <= hyb.1.fp_rows_eliminated,
            "pruned intervals cannot eliminate more than the full scan"
        );
    }

    #[test]
    fn hybrid_off_leaves_stats_untouched_and_cells_exact() {
        use crate::kernel::{HybridMode, KernelOpts};
        let (t, idx) = hybrid_fixture();
        let q = RectQuery::new(vec![AttrRange::new(0, 3, 4)], 0, 2047);
        let off = idx
            .try_execute_rect_with_stats_opts(&q, KernelOpts::new(KernelKind::Batched))
            .unwrap();
        assert_eq!(off.1.fp_rows_eliminated, 0);
        assert!(off.1.cells_probed > 0);
        // Cell-subset path: backed cells come back exact (an AB false
        // positive answers `false`), unbacked behaviour unchanged.
        let cells: Vec<Cell> = (0..2048)
            .map(|r| Cell::new(r, 0, (r / 256) as u32))
            .collect();
        let exact = idx.retrieve_cells_with_opts(
            &cells,
            KernelOpts::new(KernelKind::Batched).with_hybrid(HybridMode::Auto),
        );
        assert!(exact.iter().all(|&v| v), "true cells must stay positive");
        let miss: Vec<Cell> = (0..2048)
            .map(|r| Cell::new(r, 0, ((r / 256) as u32 + 1) % 8))
            .collect();
        let verdicts = idx.retrieve_cells_with_opts(
            &miss,
            KernelOpts::new(KernelKind::Batched).with_hybrid(HybridMode::Auto),
        );
        assert!(
            verdicts.iter().all(|&v| !v),
            "backed cells answer exactly: no false positives"
        );
        let _ = t;
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rect_query_validates_rows() {
        let t = table();
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute));
        idx.execute_rect(&RectQuery::new(vec![], 0, 8));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rect_query_validates_bins() {
        let t = table();
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute));
        idx.execute_rect(&RectQuery::new(vec![AttrRange::new(0, 0, 5)], 0, 7));
    }
}
