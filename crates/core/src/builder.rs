//! One-stop pipeline from raw data to a queryable AB index.
//!
//! [`AbPipeline`] wires together the whole stack the paper assumes:
//! raw numeric table → binning (§5.1) → equality bitmap semantics → AB
//! encoding, optionally keeping the exact [`BitmapIndex`] alongside for
//! the second-step pruning of §1.

use crate::analysis::Level;
use crate::config::AbConfig;
use crate::exact::prune_false_positives;
use crate::level::AbIndex;
use bitmap::{BinnedTable, Binner, BitmapIndex, Encoding, EquiDepth, RectQuery, Table};

/// A built pipeline: the AB index plus (optionally) the exact index it
/// approximates and the raw table for aggregation.
#[derive(Clone, Debug)]
pub struct AbPipeline {
    /// The raw source table (kept for aggregate queries).
    pub raw: Table,
    /// The binned form of the source table.
    pub binned: BinnedTable,
    /// The approximate index.
    pub ab: AbIndex,
    /// The exact equality-encoded index, when retained.
    pub exact: Option<BitmapIndex>,
}

impl AbPipeline {
    /// Starts a builder over a raw table.
    pub fn builder(table: &Table) -> AbPipelineBuilder<'_> {
        AbPipelineBuilder {
            table,
            bins: 10,
            config: AbConfig::new(Level::PerAttribute),
            keep_exact: false,
        }
    }

    /// Approximate query: superset of the true answer, 100% recall.
    pub fn query_approx(&self, query: &RectQuery) -> Vec<usize> {
        self.ab.execute_rect(query)
    }

    /// Exact query: AB retrieval followed by false-positive pruning.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline was built without `keep_exact`.
    pub fn query_exact(&self, query: &RectQuery) -> Vec<usize> {
        let exact = self
            .exact
            .as_ref()
            .expect("exact queries need .keep_exact(true) at build time");
        let candidates = self.ab.execute_rect(query);
        prune_false_positives(exact, query, &candidates)
    }

    /// Exact COUNT(*) of rows matching `query` (AB pre-filter + exact
    /// pruning).
    ///
    /// # Panics
    ///
    /// Panics if the pipeline was built without `keep_exact`.
    pub fn count_where(&self, query: &RectQuery) -> usize {
        self.query_exact(query).len()
    }

    /// Exact SUM of `column` over rows matching `query` — the intro's
    /// warehouse aggregate ("total sales of every Monday…") computed
    /// through the AB fast path.
    ///
    /// # Panics
    ///
    /// Panics if the column is unknown or the pipeline was built
    /// without `keep_exact`.
    pub fn sum_where(&self, query: &RectQuery, column: &str) -> f64 {
        let col = self
            .raw
            .column_by_name(column)
            .unwrap_or_else(|| panic!("unknown column `{column}`"));
        self.query_exact(query)
            .into_iter()
            .map(|row| col.values[row])
            .sum()
    }

    /// Approximate COUNT(*): the AB candidate count, an upper bound on
    /// the true count with expected overshoot `FP · rows scanned`.
    pub fn approx_count_where(&self, query: &RectQuery) -> usize {
        self.ab.execute_rect(query).len()
    }

    /// Approximate SUM over the AB candidates (biased high; useful
    /// where the paper's visualization tolerance applies).
    ///
    /// # Panics
    ///
    /// Panics if the column is unknown.
    pub fn approx_sum_where(&self, query: &RectQuery, column: &str) -> f64 {
        let col = self
            .raw
            .column_by_name(column)
            .unwrap_or_else(|| panic!("unknown column `{column}`"));
        self.ab
            .execute_rect(query)
            .into_iter()
            .map(|row| col.values[row])
            .sum()
    }

    /// Translates raw value ranges (`(column, lo, hi)` inclusive) into
    /// the covering bin intervals using the binner's stored edges —
    /// the front half of a SQL-style predicate over the AB.
    ///
    /// The resulting query is *conservative*: the covering bins may
    /// admit rows with values just outside the ranges, exactly like
    /// any binned bitmap index; [`Self::rows_matching_values`] adds the
    /// value-exact filter.
    ///
    /// # Panics
    ///
    /// Panics on unknown columns, missing bin edges, or an empty range.
    pub fn value_query(
        &self,
        ranges: &[(&str, f64, f64)],
        row_lo: usize,
        row_hi: usize,
    ) -> RectQuery {
        let attr_ranges = ranges
            .iter()
            .map(|&(name, lo, hi)| {
                let attr = self
                    .binned
                    .columns()
                    .iter()
                    .position(|c| c.name == name)
                    .unwrap_or_else(|| panic!("unknown column `{name}`"));
                let (lo_bin, hi_bin) = self
                    .binned
                    .column(attr)
                    .bins_covering(lo, hi)
                    .expect("column was binned without edges; use a Binner that supplies them");
                bitmap::AttrRange::new(attr, lo_bin, hi_bin)
            })
            .collect();
        RectQuery::new(attr_ranges, row_lo, row_hi)
    }

    /// Rows whose raw values fall in every `(column, lo, hi)` range:
    /// AB candidate retrieval over the covering bins, then a value-
    /// exact filter against the raw table. Exact answer, cost
    /// proportional to the candidates, never a full scan.
    pub fn rows_matching_values(
        &self,
        ranges: &[(&str, f64, f64)],
        row_lo: usize,
        row_hi: usize,
    ) -> Vec<usize> {
        let query = self.value_query(ranges, row_lo, row_hi);
        let cols: Vec<(&bitmap::Column, f64, f64)> = ranges
            .iter()
            .map(|&(name, lo, hi)| (self.raw.column_by_name(name).unwrap(), lo, hi))
            .collect();
        self.ab
            .execute_rect(&query)
            .into_iter()
            .filter(|&row| {
                cols.iter()
                    .all(|(c, lo, hi)| (*lo..=*hi).contains(&c.values[row]))
            })
            .collect()
    }
}

/// Fluent builder for [`AbPipeline`].
pub struct AbPipelineBuilder<'a> {
    table: &'a Table,
    bins: u32,
    config: AbConfig,
    keep_exact: bool,
}

impl AbPipelineBuilder<'_> {
    /// Number of equi-depth bins per attribute (default 10).
    pub fn bins(mut self, bins: u32) -> Self {
        self.bins = bins;
        self
    }

    /// Full AB configuration (level, sizing, k, hash family).
    pub fn config(mut self, config: AbConfig) -> Self {
        self.config = config;
        self
    }

    /// Retain the exact bitmap index for second-step pruning.
    pub fn keep_exact(mut self, keep: bool) -> Self {
        self.keep_exact = keep;
        self
    }

    /// Builds the pipeline.
    pub fn build(self) -> AbPipeline {
        let binned = BinnedTable::from_table(self.table, &EquiDepth::new(self.bins));
        self.build_from_binned(binned)
    }

    /// Builds with a caller-supplied binner instead of equi-depth.
    pub fn build_with_binner<B: Binner>(self, binner: &B) -> AbPipeline {
        let binned = BinnedTable::from_table(self.table, binner);
        self.build_from_binned(binned)
    }

    /// Shard-aware build: bins the table once, then builds one AB
    /// index per contiguous row-range shard (the layout served by the
    /// `svc` crate). Returns the binned table plus `(start_row, index)`
    /// pairs in row order; shard-local row `r` of shard `i` is global
    /// row `start_i + r`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds the row count.
    pub fn build_shards(self, shards: usize) -> (BinnedTable, Vec<(usize, AbIndex)>) {
        let binned = BinnedTable::from_table(self.table, &EquiDepth::new(self.bins));
        let indexes = crate::level::shard_ranges(binned.num_rows(), shards)
            .into_iter()
            .map(|r| (r.start, AbIndex::build_row_range(&binned, &self.config, r)))
            .collect();
        (binned, indexes)
    }

    fn build_from_binned(self, binned: BinnedTable) -> AbPipeline {
        let ab = AbIndex::build(&binned, &self.config);
        let exact = self
            .keep_exact
            .then(|| BitmapIndex::build(&binned, Encoding::Equality));
        AbPipeline {
            raw: self.table.clone(),
            binned,
            ab,
            exact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmap::{AttrRange, Column};

    fn sample_table() -> Table {
        let n = 1000;
        Table::new(vec![
            Column::new(
                "price",
                (0..n)
                    .map(|i| (hashkit::splitmix64(i) % 1000) as f64)
                    .collect(),
            ),
            Column::new(
                "qty",
                (0..n)
                    .map(|i| (hashkit::splitmix64(i ^ 0xABCD) % 50) as f64)
                    .collect(),
            ),
        ])
    }

    #[test]
    fn pipeline_builds_and_queries() {
        let t = sample_table();
        let p = AbPipeline::builder(&t)
            .bins(8)
            .config(AbConfig::new(Level::PerAttribute).with_alpha(8))
            .keep_exact(true)
            .build();
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 3)], 100, 500);
        let approx = p.query_approx(&q);
        let exact = p.query_exact(&q);
        // exact ⊆ approx, and exact matches the ground-truth index.
        for r in &exact {
            assert!(approx.contains(r));
        }
        let truth = p.exact.as_ref().unwrap().evaluate_rows(&q);
        assert_eq!(exact, truth);
    }

    #[test]
    #[should_panic(expected = "keep_exact")]
    fn exact_query_without_exact_index_panics() {
        let t = sample_table();
        let p = AbPipeline::builder(&t).build();
        p.query_exact(&RectQuery::new(vec![], 0, 10));
    }

    #[test]
    fn aggregates_match_bruteforce() {
        let t = sample_table();
        let p = AbPipeline::builder(&t)
            .bins(8)
            .config(AbConfig::new(Level::PerAttribute).with_alpha(8))
            .keep_exact(true)
            .build();
        let q = RectQuery::new(vec![AttrRange::new(1, 0, 3)], 0, 999);
        let matching = p.query_exact(&q);
        let want_sum: f64 = matching
            .iter()
            .map(|&r| t.column_by_name("price").unwrap().values[r])
            .sum();
        assert_eq!(p.count_where(&q), matching.len());
        assert!((p.sum_where(&q, "price") - want_sum).abs() < 1e-9);
        // Approximate versions are upper bounds (superset of rows;
        // prices here are non-negative).
        assert!(p.approx_count_where(&q) >= matching.len());
        assert!(p.approx_sum_where(&q, "price") >= want_sum - 1e-9);
    }

    #[test]
    fn value_queries_are_exact() {
        let t = sample_table();
        let p = AbPipeline::builder(&t)
            .bins(16)
            .config(AbConfig::new(Level::PerAttribute).with_alpha(8))
            .build();
        let got = p.rows_matching_values(&[("price", 100.0, 300.0)], 0, 999);
        let want: Vec<usize> = t
            .column_by_name("price")
            .unwrap()
            .values
            .iter()
            .enumerate()
            .filter(|(_, &v)| (100.0..=300.0).contains(&v))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn value_query_covers_all_matches() {
        let t = sample_table();
        let p = AbPipeline::builder(&t).bins(16).build();
        let q = p.value_query(&[("qty", 10.0, 20.0)], 0, 999);
        let candidates = p.query_approx(&q);
        for (row, &v) in t.column_by_name("qty").unwrap().values.iter().enumerate() {
            if (10.0..=20.0).contains(&v) {
                assert!(candidates.contains(&row), "row {row} (qty {v}) missed");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn value_query_validates_column() {
        let t = sample_table();
        let p = AbPipeline::builder(&t).build();
        p.value_query(&[("nope", 0.0, 1.0)], 0, 10);
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn sum_where_validates_column() {
        let t = sample_table();
        let p = AbPipeline::builder(&t).keep_exact(true).build();
        p.sum_where(&RectQuery::new(vec![], 0, 10), "nope");
    }

    #[test]
    fn sharded_build_covers_every_row() {
        let t = sample_table();
        let b = AbPipeline::builder(&t)
            .bins(8)
            .config(AbConfig::new(Level::PerAttribute).with_alpha(8));
        let (binned, shards) = b.build_shards(4);
        assert_eq!(shards.len(), 4);
        assert_eq!(shards[0].0, 0);
        let covered: usize = shards.iter().map(|(_, idx)| idx.num_rows()).sum();
        assert_eq!(covered, binned.num_rows());
        // No false negatives through the shard layout.
        for (start, idx) in &shards {
            for local in 0..idx.num_rows() {
                let bin = binned.column(0).bins[start + local];
                assert!(idx.test_cell(local, 0, bin));
            }
        }
    }

    #[test]
    fn custom_binner_respected() {
        let t = sample_table();
        let p = AbPipeline::builder(&t)
            .config(AbConfig::new(Level::PerColumn).with_alpha(8))
            .build_with_binner(&bitmap::EquiWidth::new(4));
        assert_eq!(p.binned.column(0).cardinality, 4);
        assert_eq!(p.ab.abs().len(), 8); // 2 attrs × 4 bins
    }
}
