//! Register/cache-blocked Approximate Bitmap.
//!
//! A modern refinement of the paper's structure (motivated by its §7
//! note that "performance can be further improved by incorporating
//! hardware support"): instead of scattering a cell's k probes across
//! the whole AB — k cache misses per membership test — a blocked
//! filter confines all k bits to one 512-bit block (one cache line).
//! One hash selects the block, cheap derived hashes pick the bits
//! inside it. The trade-off is a slightly higher false-positive rate
//! (block loads are binomially uneven), quantified in
//! `benches/ablation.rs` and the tests below.

use bitmap::BitVec;
use hashkit::{splitmix64, CellMapper};
use serde::{Deserialize, Serialize};

/// Bits per block: one x86-64 cache line.
pub const BLOCK_BITS: u64 = 512;

/// A blocked approximate bitmap over matrix cells.
///
/// Drop-in alternative to [`crate::ApproximateBitmap`] for the same
/// cell universe, with the same no-false-negative guarantee.
///
/// # Examples
///
/// ```
/// use ab::blocked::BlockedAb;
/// use hashkit::CellMapper;
///
/// let mut ab = BlockedAb::new(1 << 14, 4, CellMapper::for_columns(10));
/// ab.insert(3, 7);
/// assert!(ab.contains(3, 7));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlockedAb {
    bits: BitVec,
    num_blocks: u64,
    k: usize,
    mapper: CellMapper,
    inserted: u64,
}

impl BlockedAb {
    /// Creates an empty blocked AB of at least `n_bits` bits (rounded
    /// up to a whole number of 512-bit blocks).
    ///
    /// # Panics
    ///
    /// Panics if `n_bits == 0` or `k == 0` or `k > 512`.
    pub fn new(n_bits: u64, k: usize, mapper: CellMapper) -> Self {
        assert!(n_bits > 0, "AB size must be positive");
        assert!(k > 0, "k must be positive");
        assert!(k as u64 <= BLOCK_BITS, "k cannot exceed the block size");
        let num_blocks = n_bits.div_ceil(BLOCK_BITS).max(1);
        BlockedAb {
            bits: BitVec::zeros((num_blocks * BLOCK_BITS) as usize),
            num_blocks,
            k,
            mapper,
            inserted: 0,
        }
    }

    /// Total size in bits (a multiple of 512).
    pub fn n_bits(&self) -> u64 {
        self.bits.len() as u64
    }

    /// Number of hash functions.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of cells inserted.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Storage size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.size_bytes()
    }

    /// Fraction of set bits.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.density()
    }

    /// The block base offset and intra-block probe stride for a cell.
    #[inline]
    fn cell_hashes(&self, row: u64, col: u64) -> (u64, u64, u64) {
        let x = self.mapper.map(row, col);
        let h = splitmix64(x);
        let block = (h % self.num_blocks) * BLOCK_BITS;
        let h1 = splitmix64(h ^ 0x9E37_79B9_7F4A_7C15);
        let h2 = splitmix64(x ^ 0x5851_F42D_4C95_7F2D) | 1;
        (block, h1, h2)
    }

    /// Inserts cell `(row, col)`.
    #[inline]
    pub fn insert(&mut self, row: u64, col: u64) {
        let (block, h1, h2) = self.cell_hashes(row, col);
        for t in 0..self.k as u64 {
            let off = h1.wrapping_add(t.wrapping_mul(h2)) % BLOCK_BITS;
            self.bits.set((block + off) as usize);
        }
        self.inserted += 1;
    }

    /// Tests cell `(row, col)`; no false negatives, FP rate slightly
    /// above the unblocked filter's at equal (n, k).
    #[inline]
    pub fn contains(&self, row: u64, col: u64) -> bool {
        let (block, h1, h2) = self.cell_hashes(row, col);
        for t in 0..self.k as u64 {
            let off = h1.wrapping_add(t.wrapping_mul(h2)) % BLOCK_BITS;
            if !self.bits.get((block + off) as usize) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: u64, k: usize) -> BlockedAb {
        BlockedAb::new(n, k, CellMapper::for_columns(16))
    }

    #[test]
    fn size_rounds_to_blocks() {
        assert_eq!(make(1, 1).n_bits(), 512);
        assert_eq!(make(512, 1).n_bits(), 512);
        assert_eq!(make(513, 1).n_bits(), 1024);
    }

    #[test]
    fn no_false_negatives() {
        let mut ab = make(1 << 12, 5);
        let cells: Vec<(u64, u64)> = (0..300).map(|i| (i, i % 16)).collect();
        for &(r, c) in &cells {
            ab.insert(r, c);
        }
        for &(r, c) in &cells {
            assert!(ab.contains(r, c), "false negative at ({r},{c})");
        }
    }

    #[test]
    fn empty_contains_nothing() {
        let ab = make(1 << 12, 4);
        assert!(!ab.contains(1, 1));
        assert_eq!(ab.fill_ratio(), 0.0);
    }

    #[test]
    fn distinct_probes_within_block() {
        // The odd stride guarantees k distinct offsets for k <= 512.
        let ab = make(1 << 12, 8);
        let (block, h1, h2) = ab.cell_hashes(7, 3);
        let offs: std::collections::HashSet<u64> = (0..8u64)
            .map(|t| block + h1.wrapping_add(t.wrapping_mul(h2)) % BLOCK_BITS)
            .collect();
        assert_eq!(offs.len(), 8);
    }

    #[test]
    fn fp_rate_within_2x_of_unblocked_theory() {
        let s = 4000u64;
        let alpha = 8u64;
        let k = 6;
        let mut ab = BlockedAb::new(s * alpha, k, CellMapper::RowOnly);
        for r in 0..s {
            ab.insert(r, 0);
        }
        let probes = 30_000u64;
        let fp = (s..s + probes).filter(|&r| ab.contains(r, 0)).count();
        let measured = fp as f64 / probes as f64;
        let theory = crate::analysis::fp_rate(k, alpha as f64);
        assert!(
            measured < theory * 2.5 + 0.005,
            "measured {measured:.5} vs theory {theory:.5}"
        );
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn k_larger_than_block_rejected() {
        make(1 << 12, 513);
    }
}
