//! Register/cache-blocked Approximate Bitmap.
//!
//! A modern refinement of the paper's structure (motivated by its §7
//! note that "performance can be further improved by incorporating
//! hardware support"): instead of scattering a cell's k probes across
//! the whole AB — k cache misses per membership test — a blocked
//! filter confines all k bits to one 512-bit block (one cache line).
//! One hash selects the block, cheap derived hashes pick the bits
//! inside it. The trade-off is a slightly higher false-positive rate
//! (block loads are binomially uneven), quantified in
//! `benches/ablation.rs` and the tests below.

use bitmap::BitVec;
use hashkit::{splitmix64, CellMapper};
use serde::{Deserialize, Serialize};

/// Bits per block: one x86-64 cache line.
pub const BLOCK_BITS: u64 = 512;

/// Words per block.
const BLOCK_WORDS: u64 = BLOCK_BITS / 64;

/// Largest k the word-parallel path supports: each of the cell's two
/// mask words holds up to 64 distinct bits (the odd stride is a
/// bijection mod 64), so ⌈k/2⌉ ≤ 64. Larger k falls back to the
/// bit-at-a-time loop and counts into `kernel.scalar_fallbacks`.
const WORD_PARALLEL_MAX_K: usize = 128;

/// A blocked approximate bitmap over matrix cells.
///
/// Drop-in alternative to [`crate::ApproximateBitmap`] for the same
/// cell universe, with the same no-false-negative guarantee.
///
/// # Examples
///
/// ```
/// use ab::blocked::BlockedAb;
/// use hashkit::CellMapper;
///
/// let mut ab = BlockedAb::new(1 << 14, 4, CellMapper::for_columns(10));
/// ab.insert(3, 7);
/// assert!(ab.contains(3, 7));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlockedAb {
    bits: BitVec,
    num_blocks: u64,
    k: usize,
    mapper: CellMapper,
    inserted: u64,
}

impl BlockedAb {
    /// Creates an empty blocked AB of at least `n_bits` bits (rounded
    /// up to a whole number of 512-bit blocks).
    ///
    /// # Panics
    ///
    /// Panics if `n_bits == 0` or `k == 0` or `k > 512`.
    pub fn new(n_bits: u64, k: usize, mapper: CellMapper) -> Self {
        assert!(n_bits > 0, "AB size must be positive");
        assert!(k > 0, "k must be positive");
        assert!(k as u64 <= BLOCK_BITS, "k cannot exceed the block size");
        let num_blocks = n_bits.div_ceil(BLOCK_BITS).max(1);
        BlockedAb {
            bits: BitVec::zeros((num_blocks * BLOCK_BITS) as usize),
            num_blocks,
            k,
            mapper,
            inserted: 0,
        }
    }

    /// Total size in bits (a multiple of 512).
    pub fn n_bits(&self) -> u64 {
        self.bits.len() as u64
    }

    /// Number of hash functions.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of cells inserted.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Storage size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.size_bytes()
    }

    /// Fraction of set bits.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.density()
    }

    /// The block base offset and intra-block probe stride for a cell
    /// (the scalar addressing scheme, used when `k > 128`).
    #[inline]
    fn cell_hashes(&self, row: u64, col: u64) -> (u64, u64, u64) {
        let x = self.mapper.map(row, col);
        let h = splitmix64(x);
        let block = (h % self.num_blocks) * BLOCK_BITS;
        let h1 = splitmix64(h ^ 0x9E37_79B9_7F4A_7C15);
        let h2 = splitmix64(x ^ 0x5851_F42D_4C95_7F2D) | 1;
        (block, h1, h2)
    }

    /// Word-parallel addressing (k ≤ 128): the cell's k probe bits are
    /// materialized as two 64-bit masks over two words of its block, so
    /// a whole membership test is ≤ 2 word loads (and an insert is 2
    /// read-modify-write stores) instead of k dependent bit reads.
    /// ⌈k/2⌉ bits go into the first mask and ⌊k/2⌋ into the second; the
    /// odd stride `h2` is a bijection mod 64, so each mask has exactly
    /// that many distinct bits. Insert and test share this derivation,
    /// preserving the no-false-negative guarantee.
    #[inline]
    fn cell_masks(&self, row: u64, col: u64) -> (usize, usize, u64, u64) {
        let x = self.mapper.map(row, col);
        let h = splitmix64(x);
        let block_word = (h % self.num_blocks) * BLOCK_WORDS;
        let g = splitmix64(h ^ 0x9E37_79B9_7F4A_7C15);
        let h2 = splitmix64(x ^ 0x5851_F42D_4C95_7F2D) | 1;
        let w0 = (block_word + (g & 7)) as usize;
        let w1 = (block_word + ((g >> 3) & 7)) as usize;
        let k0 = (self.k as u64).div_ceil(2);
        let k1 = self.k as u64 / 2;
        let b0 = g >> 6;
        let b1 = g >> 35;
        let mut m0 = 0u64;
        for t in 0..k0 {
            m0 |= 1u64 << (b0.wrapping_add(t.wrapping_mul(h2)) % 64);
        }
        let mut m1 = 0u64;
        for t in 0..k1 {
            m1 |= 1u64 << (b1.wrapping_add(t.wrapping_mul(h2)) % 64);
        }
        (w0, w1, m0, m1)
    }

    /// Whether this AB uses the two-mask word-parallel cell layout.
    #[inline]
    fn word_parallel(&self) -> bool {
        self.k <= WORD_PARALLEL_MAX_K
    }

    /// Inserts cell `(row, col)`.
    #[inline]
    pub fn insert(&mut self, row: u64, col: u64) {
        if self.word_parallel() {
            let (w0, w1, m0, m1) = self.cell_masks(row, col);
            self.bits.or_word(w0, m0);
            self.bits.or_word(w1, m1);
        } else {
            let (block, h1, h2) = self.cell_hashes(row, col);
            for t in 0..self.k as u64 {
                let off = h1.wrapping_add(t.wrapping_mul(h2)) % BLOCK_BITS;
                self.bits.set((block + off) as usize);
            }
        }
        self.inserted += 1;
    }

    /// Tests cell `(row, col)`; no false negatives, FP rate slightly
    /// above the unblocked filter's at equal (n, k).
    #[inline]
    pub fn contains(&self, row: u64, col: u64) -> bool {
        if self.word_parallel() {
            let (w0, w1, m0, m1) = self.cell_masks(row, col);
            self.bits.word(w0) & m0 == m0 && self.bits.word(w1) & m1 == m1
        } else {
            obs::counter!("kernel.scalar_fallbacks").inc();
            let (block, h1, h2) = self.cell_hashes(row, col);
            for t in 0..self.k as u64 {
                let off = h1.wrapping_add(t.wrapping_mul(h2)) % BLOCK_BITS;
                if !self.bits.get((block + off) as usize) {
                    return false;
                }
            }
            true
        }
    }

    /// [`Self::contains`] over a batch of cells, verdicts in input
    /// order. The word-parallel layout (k ≤ 128) runs in gather waves
    /// of [`SIMD_WAVE`](crate::kernel::SIMD_WAVE): each wave gathers
    /// the 8 lanes' first mask words in one vector gather, then the 8
    /// second words, and compares against the per-lane masks — the
    /// two-u64-mask test at wave throughput instead of one cell at a
    /// time. Verdicts are bit-identical to per-cell [`Self::contains`].
    /// Larger k takes the scalar fallback loop (counted into
    /// `kernel.scalar_fallbacks`, once per batch).
    pub fn contains_batch(&self, cells: &[(u64, u64)]) -> Vec<bool> {
        use crate::kernel::SIMD_WAVE;
        if !self.word_parallel() {
            obs::counter!("kernel.scalar_fallbacks").inc();
            return cells
                .iter()
                .map(|&(r, c)| {
                    let (block, h1, h2) = self.cell_hashes(r, c);
                    (0..self.k as u64).all(|t| {
                        let off = h1.wrapping_add(t.wrapping_mul(h2)) % BLOCK_BITS;
                        self.bits.get((block + off) as usize)
                    })
                })
                .collect();
        }
        let engine = crate::kernel::active_simd_engine();
        let words = self.bits.words();
        let base = words.as_ptr() as u64;
        let mut out = Vec::with_capacity(cells.len());
        let mut addrs0 = [0u64; SIMD_WAVE];
        let mut addrs1 = [0u64; SIMD_WAVE];
        let mut masks0 = [0u64; SIMD_WAVE];
        let mut masks1 = [0u64; SIMD_WAVE];
        let mut got0 = [0u64; SIMD_WAVE];
        let mut got1 = [0u64; SIMD_WAVE];
        for wave in cells.chunks(SIMD_WAVE) {
            let w = wave.len();
            for (lane, &(r, c)) in wave.iter().enumerate() {
                let (w0, w1, m0, m1) = self.cell_masks(r, c);
                addrs0[lane] = base + 8 * w0 as u64;
                addrs1[lane] = base + 8 * w1 as u64;
                masks0[lane] = m0;
                masks1[lane] = m1;
            }
            crate::kernel::gather_words(engine, &addrs0, w, &mut got0);
            crate::kernel::gather_words(engine, &addrs1, w, &mut got1);
            for lane in 0..w {
                out.push(
                    got0[lane] & masks0[lane] == masks0[lane]
                        && got1[lane] & masks1[lane] == masks1[lane],
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: u64, k: usize) -> BlockedAb {
        BlockedAb::new(n, k, CellMapper::for_columns(16))
    }

    #[test]
    fn size_rounds_to_blocks() {
        assert_eq!(make(1, 1).n_bits(), 512);
        assert_eq!(make(512, 1).n_bits(), 512);
        assert_eq!(make(513, 1).n_bits(), 1024);
    }

    #[test]
    fn no_false_negatives() {
        let mut ab = make(1 << 12, 5);
        let cells: Vec<(u64, u64)> = (0..300).map(|i| (i, i % 16)).collect();
        for &(r, c) in &cells {
            ab.insert(r, c);
        }
        for &(r, c) in &cells {
            assert!(ab.contains(r, c), "false negative at ({r},{c})");
        }
    }

    #[test]
    fn empty_contains_nothing() {
        let ab = make(1 << 12, 4);
        assert!(!ab.contains(1, 1));
        assert_eq!(ab.fill_ratio(), 0.0);
    }

    #[test]
    fn distinct_probes_within_block() {
        // Scalar path: the odd stride guarantees k distinct offsets for
        // k <= 512.
        let ab = make(1 << 12, 8);
        let (block, h1, h2) = ab.cell_hashes(7, 3);
        let offs: std::collections::HashSet<u64> = (0..8u64)
            .map(|t| block + h1.wrapping_add(t.wrapping_mul(h2)) % BLOCK_BITS)
            .collect();
        assert_eq!(offs.len(), 8);
    }

    #[test]
    fn cell_masks_carry_exactly_k_bits() {
        // Word-parallel path: ⌈k/2⌉ + ⌊k/2⌋ = k distinct bits across
        // the two masks (the odd stride is a bijection mod 64), and
        // both words stay inside the cell's block.
        for k in [1usize, 2, 5, 8, 64, 128] {
            let ab = make(1 << 14, k);
            for cell in 0..200u64 {
                let (w0, w1, m0, m1) = ab.cell_masks(cell, cell % 16);
                assert_eq!(m0.count_ones() as usize, k.div_ceil(2), "k={k} cell={cell}");
                assert_eq!(m1.count_ones() as usize, k / 2, "k={k} cell={cell}");
                assert_eq!(
                    w0 as u64 / BLOCK_WORDS,
                    w1 as u64 / BLOCK_WORDS,
                    "masks escaped the block"
                );
            }
        }
    }

    #[test]
    fn scalar_fallback_above_128_still_has_no_false_negatives() {
        let mut ab = make(1 << 14, 130);
        assert!(!ab.word_parallel());
        let cells: Vec<(u64, u64)> = (0..50).map(|i| (i, i % 16)).collect();
        for &(r, c) in &cells {
            ab.insert(r, c);
        }
        for &(r, c) in &cells {
            assert!(ab.contains(r, c), "false negative at ({r},{c})");
        }
    }

    #[test]
    fn fp_rate_within_2x_of_unblocked_theory() {
        let s = 4000u64;
        let alpha = 8u64;
        let k = 6;
        let mut ab = BlockedAb::new(s * alpha, k, CellMapper::RowOnly);
        for r in 0..s {
            ab.insert(r, 0);
        }
        let probes = 30_000u64;
        let fp = (s..s + probes).filter(|&r| ab.contains(r, 0)).count();
        let measured = fp as f64 / probes as f64;
        let theory = crate::analysis::fp_rate(k, alpha as f64);
        assert!(
            measured < theory * 2.5 + 0.005,
            "measured {measured:.5} vs theory {theory:.5}"
        );
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn k_larger_than_block_rejected() {
        make(1 << 12, 513);
    }

    #[test]
    fn contains_batch_matches_per_cell_contains() {
        // Both layouts: word-parallel (k=5, gather waves) and the
        // scalar fallback (k=130), over a mix of inserted and absent
        // cells at every wave remainder length.
        for k in [5usize, 130] {
            let mut ab = make(1 << 14, k);
            let present: Vec<(u64, u64)> = (0..97).map(|i| (i * 3, i % 16)).collect();
            for &(r, c) in &present {
                ab.insert(r, c);
            }
            let mixed: Vec<(u64, u64)> = (0..500u64).map(|i| (i, (i * 7) % 16)).collect();
            for len in [1usize, 7, 8, 9, 100, mixed.len()] {
                let cells = &mixed[..len];
                let batch = ab.contains_batch(cells);
                let scalar: Vec<bool> = cells.iter().map(|&(r, c)| ab.contains(r, c)).collect();
                assert_eq!(batch, scalar, "k={k} len={len}");
            }
            // Every inserted cell must come back positive through the
            // batch path too (no false negatives at wave throughput).
            assert!(ab.contains_batch(&present).iter().all(|&b| b), "k={k}");
        }
    }
}
