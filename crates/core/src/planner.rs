//! Cost-based engine selection: AB vs WAH per query.
//!
//! Figure 14's lesson is operational: the AB wins while the queried
//! row fraction is small and loses to WAH's flat full-column cost
//! beyond a crossover. [`CostModel`] captures both costs (calibrated
//! from measurements on the actual data), and [`plan`] picks the
//! engine per query — turning the paper's observation ("executing a
//! query that selects up to around 15% of the rows by using AB is
//! still faster") into a planner rule with a data-derived threshold
//! instead of a hard-coded 15%.

use bitmap::RectQuery;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which index answers a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Approximate Bitmap: O(rows queried), approximate (100% recall).
    Ab,
    /// WAH-compressed bitmaps: flat full-column cost, exact.
    Wah,
}

/// Calibrated per-query cost estimates.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Mean cost of one WAH rectangular query (ms) — independent of
    /// the row range.
    pub wah_ms_per_query: f64,
    /// Mean AB cost per (row × constrained attribute) probed (ms).
    pub ab_ms_per_row_attr: f64,
}

impl CostModel {
    /// Estimated AB cost for a query: rows × qdim probe groups.
    pub fn ab_estimate_ms(&self, query: &RectQuery) -> f64 {
        self.ab_ms_per_row_attr * query.num_rows() as f64 * query.qdim().max(1) as f64
    }

    /// Estimated WAH cost (flat).
    pub fn wah_estimate_ms(&self, _query: &RectQuery) -> f64 {
        self.wah_ms_per_query
    }

    /// The row count at which the engines break even for a query of
    /// dimensionality `qdim` — the calibrated Figure 14 crossover.
    pub fn crossover_rows(&self, qdim: usize) -> usize {
        (self.wah_ms_per_query / (self.ab_ms_per_row_attr * qdim.max(1) as f64)).ceil() as usize
    }
}

/// Chooses the cheaper engine under the model.
pub fn plan(model: &CostModel, query: &RectQuery) -> Engine {
    if model.ab_estimate_ms(query) <= model.wah_estimate_ms(query) {
        Engine::Ab
    } else {
        Engine::Wah
    }
}

/// Measures a cost model by timing `sample_queries` against both
/// indexes (a few iterations each; intended to run once at load time).
///
/// # Panics
///
/// Panics if `sample_queries` is empty.
pub fn calibrate(
    ab: &crate::AbIndex,
    wah: &wah_like::WahLike<'_>,
    sample_queries: &[RectQuery],
) -> CostModel {
    assert!(!sample_queries.is_empty(), "need sample queries");
    let t0 = Instant::now();
    let mut row_attrs = 0usize;
    for q in sample_queries {
        std::hint::black_box(ab.execute_rect(q));
        row_attrs += q.num_rows() * q.qdim().max(1);
    }
    let ab_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    for q in sample_queries {
        wah.evaluate(q);
    }
    let wah_ms = t1.elapsed().as_secs_f64() * 1e3;

    CostModel {
        wah_ms_per_query: (wah_ms / sample_queries.len() as f64).max(1e-9),
        ab_ms_per_row_attr: (ab_ms / row_attrs.max(1) as f64).max(1e-12),
    }
}

/// A thin closure wrapper so the planner can calibrate against any WAH
/// implementation without this crate depending on the `wah` crate
/// (which sits above `ab` in the workspace graph).
pub mod wah_like {
    use bitmap::RectQuery;

    /// An opaque "evaluate a rectangular query" callable.
    pub struct WahLike<'a> {
        eval: Box<dyn Fn(&RectQuery) + 'a>,
    }

    impl<'a> WahLike<'a> {
        /// Wraps an evaluator closure (it should fully execute the
        /// query and discard the result).
        pub fn new<F: Fn(&RectQuery) + 'a>(eval: F) -> Self {
            WahLike {
                eval: Box::new(eval),
            }
        }

        /// Runs the wrapped evaluator.
        pub fn evaluate(&self, q: &RectQuery) {
            (self.eval)(q)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmap::AttrRange;

    fn model() -> CostModel {
        CostModel {
            wah_ms_per_query: 1.0,
            ab_ms_per_row_attr: 0.001,
        }
    }

    fn q(rows: usize) -> RectQuery {
        RectQuery::new(vec![AttrRange::new(0, 0, 1)], 0, rows - 1)
    }

    #[test]
    fn small_queries_go_to_ab() {
        assert_eq!(plan(&model(), &q(100)), Engine::Ab);
    }

    #[test]
    fn large_queries_go_to_wah() {
        assert_eq!(plan(&model(), &q(10_000)), Engine::Wah);
    }

    #[test]
    fn crossover_is_consistent_with_plan() {
        let m = model();
        let cross = m.crossover_rows(1);
        assert_eq!(cross, 1000);
        let q1 = RectQuery::new(vec![AttrRange::new(0, 0, 0)], 0, cross - 2);
        let q2 = RectQuery::new(vec![AttrRange::new(0, 0, 0)], 0, cross * 2);
        assert_eq!(plan(&m, &q1), Engine::Ab);
        assert_eq!(plan(&m, &q2), Engine::Wah);
    }

    #[test]
    fn higher_qdim_lowers_crossover() {
        let m = model();
        assert!(m.crossover_rows(4) < m.crossover_rows(1));
    }

    #[test]
    fn calibrate_produces_positive_costs() {
        use crate::{AbConfig, AbIndex, Level};
        use bitmap::{BinnedColumn, BinnedTable, BitmapIndex, Encoding};
        let t = BinnedTable::new(vec![BinnedColumn::new(
            "x",
            (0..2000u32).map(|i| i % 8).collect(),
            8,
        )]);
        let ab = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(8));
        let exact = BitmapIndex::build(&t, Encoding::Equality);
        let wah = wah_like::WahLike::new(|q: &RectQuery| {
            std::hint::black_box(exact.evaluate(q));
        });
        let samples: Vec<RectQuery> = (0..5)
            .map(|i| RectQuery::new(vec![AttrRange::new(0, 0, 3)], i * 100, i * 100 + 199))
            .collect();
        let m = calibrate(&ab, &wah, &samples);
        assert!(m.wah_ms_per_query > 0.0);
        assert!(m.ab_ms_per_row_attr > 0.0);
        assert!(m.crossover_rows(1) > 0);
    }
}
