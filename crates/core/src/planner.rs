//! Cost-based engine selection: AB vs WAH per query.
//!
//! Figure 14's lesson is operational: the AB wins while the queried
//! row fraction is small and loses to WAH's flat full-column cost
//! beyond a crossover. [`CostModel`] captures both costs (calibrated
//! from measurements on the actual data), and [`plan`] picks the
//! engine per query — turning the paper's observation ("executing a
//! query that selects up to around 15% of the rows by using AB is
//! still faster") into a planner rule with a data-derived threshold
//! instead of a hard-coded 15%.

use bitmap::RectQuery;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which index answers a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Approximate Bitmap: O(rows queried), approximate (100% recall).
    Ab,
    /// WAH-compressed bitmaps: flat full-column cost, exact.
    Wah,
}

/// Calibrated per-query cost estimates, with per-sample dispersion.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Mean cost of one WAH rectangular query (ms) — independent of
    /// the row range.
    pub wah_ms_per_query: f64,
    /// Mean AB cost per (row × constrained attribute) probed (ms).
    pub ab_ms_per_row_attr: f64,
    /// Population stddev of the per-query WAH cost across the
    /// calibration samples (0 for a hand-built model).
    pub wah_ms_stddev: f64,
    /// Population stddev of the per-(row × attribute) AB cost across
    /// the calibration samples (0 for a hand-built model).
    pub ab_ms_stddev: f64,
}

impl CostModel {
    /// A model from point estimates alone (no dispersion), e.g. for
    /// tests or externally supplied costs.
    pub fn new(wah_ms_per_query: f64, ab_ms_per_row_attr: f64) -> Self {
        CostModel {
            wah_ms_per_query,
            ab_ms_per_row_attr,
            wah_ms_stddev: 0.0,
            ab_ms_stddev: 0.0,
        }
    }

    /// Estimated AB cost for a query: rows × qdim probe groups.
    pub fn ab_estimate_ms(&self, query: &RectQuery) -> f64 {
        self.ab_ms_per_row_attr * query.num_rows() as f64 * query.qdim().max(1) as f64
    }

    /// Estimated WAH cost (flat).
    pub fn wah_estimate_ms(&self, _query: &RectQuery) -> f64 {
        self.wah_ms_per_query
    }

    /// The row count at which the engines break even for a query of
    /// dimensionality `qdim` — the calibrated Figure 14 crossover.
    pub fn crossover_rows(&self, qdim: usize) -> usize {
        (self.wah_ms_per_query / (self.ab_ms_per_row_attr * qdim.max(1) as f64)).ceil() as usize
    }

    /// The crossover as a `(low, mid, high)` interval: `mid` is
    /// [`Self::crossover_rows`]; `low`/`high` re-solve it with both
    /// costs shifted one stddev against/for the AB. A wide interval
    /// means noisy calibration — the single-number crossover should
    /// not be trusted to the row.
    pub fn crossover_rows_spread(&self, qdim: usize) -> (usize, usize, usize) {
        let mid = self.crossover_rows(qdim);
        let q = qdim.max(1) as f64;
        let lo = ((self.wah_ms_per_query - self.wah_ms_stddev).max(0.0)
            / ((self.ab_ms_per_row_attr + self.ab_ms_stddev) * q))
            .ceil() as usize;
        let hi = ((self.wah_ms_per_query + self.wah_ms_stddev)
            / ((self.ab_ms_per_row_attr - self.ab_ms_stddev).max(1e-15) * q))
            .ceil() as usize;
        (lo.min(mid), mid, hi.max(mid))
    }
}

/// Chooses the cheaper engine under the model (and counts the choice
/// into `planner.plan.ab` / `planner.plan.wah`).
pub fn plan(model: &CostModel, query: &RectQuery) -> Engine {
    if model.ab_estimate_ms(query) <= model.wah_estimate_ms(query) {
        obs::counter!("planner.plan.ab").inc();
        Engine::Ab
    } else {
        obs::counter!("planner.plan.wah").inc();
        Engine::Wah
    }
}

/// Finest-level occupancy above which descent is pointless: nearly
/// every region survives, so the pyramid walk is pure overhead.
const DESCENT_MAX_OCCUPANCY: f64 = 0.9;

/// Decides whether walking the [`HierAb`](crate::hier::HierAb)
/// pyramid beats a flat scan for `query` (and counts the choice into
/// `planner.descent.hier` / `planner.descent.flat`).
///
/// Descent costs O(spans × groups) level-AB probes and only pays off
/// when whole finest-level regions die, so it wins when
///
/// * the query's row interval spans at least two finest row-spans
///   (anything smaller cannot prune a full region the flat scan would
///   have visited), and
/// * the finest level is not near-saturated (occupancy below
///   `DESCENT_MAX_OCCUPANCY` = 0.9) — on uniformly shuffled data
///   every region is occupied and pruning never fires.
///
/// Queries with no range constraints match every row; there is
/// nothing to prune.
pub fn plan_descent(hier: &crate::hier::HierAb, query: &RectQuery) -> bool {
    let descend = !query.ranges.is_empty()
        && query.num_rows() >= 2 * hier.finest().row_span()
        && hier.finest().occupancy_fraction() < DESCENT_MAX_OCCUPANCY;
    if descend {
        obs::counter!("planner.descent.hier").inc();
    } else {
        obs::counter!("planner.descent.flat").inc();
    }
    descend
}

fn mean_and_stddev(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Measures a cost model by timing `sample_queries` against both
/// indexes (intended to run once at load time). Each sample is timed
/// individually — one clock read per sample boundary, since the read
/// that ends sample *i* also starts sample *i+1* — so the model
/// carries per-sample dispersion, and each sample's elapsed time lands
/// in the `planner.calibrate.{ab,wah}_us` histograms. After fitting,
/// every sample's |actual − estimated| lands in `planner.residual_us`.
///
/// # Panics
///
/// Panics if `sample_queries` is empty.
pub fn calibrate(
    ab: &crate::AbIndex,
    wah: &wah_like::WahLike<'_>,
    sample_queries: &[RectQuery],
) -> CostModel {
    assert!(!sample_queries.is_empty(), "need sample queries");

    // The kernel's adaptive batch depth is a per-index property of the
    // same calibration pass (AB footprint vs cache hierarchy); record
    // it here so one `kernel.batch_rows` sample per index exists even
    // before the first query runs.
    obs::histogram!("kernel.batch_rows").record(ab.adaptive_batch_rows() as u64);

    let mut ab_ms = Vec::with_capacity(sample_queries.len());
    let mut ab_per_row_attr = Vec::with_capacity(sample_queries.len());
    let mut last = Instant::now();
    for q in sample_queries {
        std::hint::black_box(ab.execute_rect(q));
        let now = Instant::now();
        let ms = (now - last).as_secs_f64() * 1e3;
        last = now;
        obs::histogram!("planner.calibrate.ab_us").record((ms * 1e3) as u64);
        let row_attrs = (q.num_rows() * q.qdim().max(1)).max(1);
        ab_ms.push(ms);
        ab_per_row_attr.push(ms / row_attrs as f64);
    }

    let mut wah_ms = Vec::with_capacity(sample_queries.len());
    let mut last = Instant::now();
    for q in sample_queries {
        wah.evaluate(q);
        let now = Instant::now();
        let ms = (now - last).as_secs_f64() * 1e3;
        last = now;
        obs::histogram!("planner.calibrate.wah_us").record((ms * 1e3) as u64);
        wah_ms.push(ms);
    }

    let (wah_mean, wah_sd) = mean_and_stddev(&wah_ms);
    let (ab_mean, ab_sd) = mean_and_stddev(&ab_per_row_attr);
    let model = CostModel {
        wah_ms_per_query: wah_mean.max(1e-9),
        ab_ms_per_row_attr: ab_mean.max(1e-12),
        wah_ms_stddev: wah_sd,
        ab_ms_stddev: ab_sd,
    };

    for (q, &ms) in sample_queries.iter().zip(&ab_ms) {
        let residual_us = (ms - model.ab_estimate_ms(q)).abs() * 1e3;
        obs::histogram!("planner.residual_us").record(residual_us as u64);
    }
    for &ms in &wah_ms {
        let residual_us = (ms - model.wah_ms_per_query).abs() * 1e3;
        obs::histogram!("planner.residual_us").record(residual_us as u64);
    }
    model
}

/// A thin closure wrapper so the planner can calibrate against any WAH
/// implementation without this crate depending on the `wah` crate
/// (which sits above `ab` in the workspace graph).
pub mod wah_like {
    use bitmap::RectQuery;

    /// An opaque "evaluate a rectangular query" callable.
    pub struct WahLike<'a> {
        eval: Box<dyn Fn(&RectQuery) + 'a>,
    }

    impl<'a> WahLike<'a> {
        /// Wraps an evaluator closure (it should fully execute the
        /// query and discard the result).
        pub fn new<F: Fn(&RectQuery) + 'a>(eval: F) -> Self {
            WahLike {
                eval: Box::new(eval),
            }
        }

        /// Runs the wrapped evaluator.
        pub fn evaluate(&self, q: &RectQuery) {
            (self.eval)(q)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitmap::AttrRange;

    fn model() -> CostModel {
        CostModel::new(1.0, 0.001)
    }

    fn q(rows: usize) -> RectQuery {
        RectQuery::new(vec![AttrRange::new(0, 0, 1)], 0, rows - 1)
    }

    #[test]
    fn small_queries_go_to_ab() {
        assert_eq!(plan(&model(), &q(100)), Engine::Ab);
    }

    #[test]
    fn large_queries_go_to_wah() {
        assert_eq!(plan(&model(), &q(10_000)), Engine::Wah);
    }

    #[test]
    fn crossover_is_consistent_with_plan() {
        let m = model();
        let cross = m.crossover_rows(1);
        assert_eq!(cross, 1000);
        let q1 = RectQuery::new(vec![AttrRange::new(0, 0, 0)], 0, cross - 2);
        let q2 = RectQuery::new(vec![AttrRange::new(0, 0, 0)], 0, cross * 2);
        assert_eq!(plan(&m, &q1), Engine::Ab);
        assert_eq!(plan(&m, &q2), Engine::Wah);
    }

    #[test]
    fn higher_qdim_lowers_crossover() {
        let m = model();
        assert!(m.crossover_rows(4) < m.crossover_rows(1));
    }

    #[test]
    fn calibrate_produces_positive_costs() {
        use crate::{AbConfig, AbIndex, Level};
        use bitmap::{BinnedColumn, BinnedTable, BitmapIndex, Encoding};
        let t = BinnedTable::new(vec![BinnedColumn::new(
            "x",
            (0..2000u32).map(|i| i % 8).collect(),
            8,
        )]);
        let ab = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(8));
        let exact = BitmapIndex::build(&t, Encoding::Equality);
        let wah = wah_like::WahLike::new(|q: &RectQuery| {
            std::hint::black_box(exact.evaluate(q));
        });
        let samples: Vec<RectQuery> = (0..5)
            .map(|i| RectQuery::new(vec![AttrRange::new(0, 0, 3)], i * 100, i * 100 + 199))
            .collect();
        let m = calibrate(&ab, &wah, &samples);
        assert!(m.wah_ms_per_query > 0.0);
        assert!(m.ab_ms_per_row_attr > 0.0);
        assert!(m.crossover_rows(1) > 0);
        assert!(m.wah_ms_stddev >= 0.0);
        assert!(m.ab_ms_stddev >= 0.0);
    }

    #[test]
    fn plan_descent_requires_large_sparse_queries() {
        use crate::hier::{HierAb, HierConfig, HierLevelSpec};
        use crate::{AbConfig, AbIndex, Level};
        use bitmap::{BinnedColumn, BinnedTable};
        // Clustered data: 8 bins over 2000 rows in contiguous runs, so
        // the finest 64-row × 2-bin grid is sparse.
        let t = BinnedTable::new(vec![BinnedColumn::new(
            "v",
            (0..2000u32).map(|i| (i / 250).min(7)).collect(),
            8,
        )]);
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(32));
        let hier = HierAb::build(
            &idx,
            &HierConfig {
                levels: vec![HierLevelSpec {
                    row_span: 64,
                    bin_group: 2,
                }],
            },
        );
        let ranges = vec![AttrRange::new(0, 0, 1)];
        // Spans ≥ 2 row-spans of sparse data: descend.
        assert!(plan_descent(
            &hier,
            &RectQuery::new(ranges.clone(), 0, 1999)
        ));
        // Smaller than 2 row-spans: a full region can't be pruned.
        assert!(!plan_descent(&hier, &RectQuery::new(ranges, 0, 100)));
        // No range constraints: every row matches, nothing to prune.
        assert!(!plan_descent(&hier, &RectQuery::new(vec![], 0, 1999)));
    }

    #[test]
    fn crossover_spread_brackets_the_mean() {
        let mut m = model();
        m.wah_ms_stddev = 0.2;
        m.ab_ms_stddev = 0.0002;
        let (lo, mid, hi) = m.crossover_rows_spread(1);
        assert_eq!(mid, m.crossover_rows(1));
        assert!(lo <= mid && mid <= hi, "({lo}, {mid}, {hi}) not ordered");
        assert!(lo < hi, "nonzero dispersion must widen the interval");
        // Zero dispersion collapses the interval to the point estimate.
        let (lo0, mid0, hi0) = model().crossover_rows_spread(1);
        assert_eq!((lo0, hi0), (mid0, mid0));
    }
}
