//! Hierarchical multi-resolution AB: coarse-to-fine pruning for huge
//! rectangular queries (DESIGN.md §18).
//!
//! The paper's three encoding levels are resolution *choices*; a rect
//! query still pays O(rows × ranges) probes even when whole row regions
//! are provably empty. [`HierAb`] adds a pyramid of L coarse levels
//! over an existing [`AbIndex`]: level ℓ partitions the row space into
//! spans of `row_span[ℓ]` rows and each attribute's bins into groups of
//! `bin_group[ℓ]`, and inserts the super-cell `(span, group)` into a
//! small per-level AB **iff some base cell inside the region tests
//! positive in the base AB**. Two consequences:
//!
//! * **No false negatives by construction** — a coarse *miss* proves
//!   every base cell in the region tests negative, so no flat-scan row
//!   inside it could match; pruning the region cannot change the
//!   result.
//! * **Bit-identical results** — occupancy is derived from the *base
//!   AB's* verdicts (a probe sweep), not from the source table, so a
//!   region containing only base-AB false positives is still kept.
//!   The pruned scan therefore returns exactly the flat scan's rows.
//!
//! Queries walk coarse-to-fine ([`HierAb::prune`]): a span survives a
//! level iff for *every* attribute range at least one overlapping
//! group tests positive (OR over groups, AND over ranges — Figure 7
//! lifted one resolution up). Surviving row intervals then feed the
//! existing scalar/batched/SIMD kernels unchanged.
//!
//! Per-level AB false positives only *lose pruning* (a dead region
//! survives to the next level); they can never prune a live one.

use crate::analysis::next_pow2;
use crate::encoding::ApproximateBitmap;
use crate::level::{AbIndex, AttributeMeta};
use bitmap::RectQuery;
use hashkit::{CellMapper, HashFamily};
use serde::{Deserialize, Serialize};

/// Per-level AB sizing: bits per occupied super-cell. α = 16 with the
/// matching optimal k ≈ ln2·α keeps a level's false-positive rate
/// (which only costs pruning opportunity, never correctness) around
/// 4·10⁻⁴ while the level AB stays tiny next to the base AB.
const LEVEL_ALPHA: u64 = 16;

/// Hash count for the per-level ABs (optimal for α = 16).
const LEVEL_K: usize = 11;

/// Geometry of one pyramid level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierLevelSpec {
    /// Rows per super-cell row span.
    pub row_span: usize,
    /// Bins per super-cell bin group (within one attribute).
    pub bin_group: u32,
}

/// Pyramid build configuration: the level geometries, finest first.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierConfig {
    /// Level specs in ascending `row_span` order (finest first).
    pub levels: Vec<HierLevelSpec>,
}

impl Default for HierConfig {
    /// The default geometry: 4096-row × 4-bin regions under 65536-row
    /// × 16-bin super-regions.
    fn default() -> Self {
        HierConfig {
            levels: vec![
                HierLevelSpec {
                    row_span: 4096,
                    bin_group: 4,
                },
                HierLevelSpec {
                    row_span: 65536,
                    bin_group: 16,
                },
            ],
        }
    }
}

/// One resolution of the pyramid: a small AB over (row span × bin
/// group) super-cells.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HierLevel {
    row_span: usize,
    bin_group: u32,
    /// Global group-column of each attribute's group 0 — the coarse
    /// analogue of [`AttributeMeta::offset`]. Recomputed from the
    /// schema on deserialize, never stored.
    group_offsets: Vec<usize>,
    /// Total group columns across all attributes.
    num_groups: usize,
    /// Row spans covering the indexed rows.
    num_spans: usize,
    ab: ApproximateBitmap,
}

impl HierLevel {
    /// Rows per super-cell row span.
    pub fn row_span(&self) -> usize {
        self.row_span
    }

    /// Bins per super-cell bin group.
    pub fn bin_group(&self) -> u32 {
        self.bin_group
    }

    /// The level's spec (for rebuilding a sibling shard's pyramid).
    pub fn spec(&self) -> HierLevelSpec {
        HierLevelSpec {
            row_span: self.row_span,
            bin_group: self.bin_group,
        }
    }

    /// The level's approximate bitmap (for serialization).
    pub fn ab(&self) -> &ApproximateBitmap {
        &self.ab
    }

    /// Fraction of this level's super-cells that are occupied — the
    /// planner's signal for whether descent can prune anything.
    pub fn occupancy_fraction(&self) -> f64 {
        let cells = (self.num_spans * self.num_groups).max(1);
        self.ab.inserted() as f64 / cells as f64
    }

    /// Whether `span` can contain a row matching every `range`: for
    /// each range, OR over the groups its bins overlap; AND across
    /// ranges. A `false` is definite (every base cell in the region
    /// tests negative for some range), so the span is safely pruned.
    fn span_survives(&self, span: usize, ranges: &[bitmap::AttrRange]) -> bool {
        ranges.iter().all(|r| {
            if r.lo > r.hi {
                return false; // degenerate range: no row can match
            }
            let base = self.group_offsets[r.attribute];
            let g_lo = r.lo / self.bin_group;
            let g_hi = r.hi / self.bin_group;
            (g_lo..=g_hi).any(|g| self.ab.contains(span as u64, (base + g as usize) as u64))
        })
    }
}

/// A coarse-to-fine pyramid over an [`AbIndex`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HierAb {
    /// Levels in ascending `row_span` order (finest first).
    levels: Vec<HierLevel>,
    num_rows: usize,
}

/// Outcome of one coarse-to-fine pruning walk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HierPrune {
    /// Surviving row intervals (inclusive), ascending and disjoint;
    /// adjacent survivors are merged so the kernel sees long runs.
    pub intervals: Vec<(usize, usize)>,
    /// Super-cell regions eliminated across all levels.
    pub regions_pruned: u64,
    /// Rows eliminated before any per-row probe ran.
    pub rows_skipped: u64,
}

impl HierAb {
    /// Builds the pyramid over `index` by probe-sweeping the base AB:
    /// a finest-level region is occupied iff *any* of its cells tests
    /// positive (stopping at the first hit), and coarser levels fold
    /// the finest occupancy upward by region intersection. Sweeping
    /// the base AB — not the source table — is what makes pruned
    /// queries bit-identical to flat ones: base-AB false positives
    /// keep their regions alive.
    ///
    /// # Panics
    ///
    /// Panics if `config.levels` is empty, a `row_span` or `bin_group`
    /// is zero, or the levels are not in ascending `row_span` order.
    pub fn build(index: &AbIndex, config: &HierConfig) -> Self {
        Self::build_parallel(index, config, 1)
    }

    /// [`Self::build`] with the finest-level probe sweep chunked over
    /// `threads` workers (spans are independent, so the result is
    /// bit-identical regardless of thread count).
    pub fn build_parallel(index: &AbIndex, config: &HierConfig, threads: usize) -> Self {
        let t0 = std::time::Instant::now();
        assert!(
            !config.levels.is_empty(),
            "pyramid needs at least one level"
        );
        for w in config.levels.windows(2) {
            assert!(
                w[0].row_span < w[1].row_span,
                "pyramid levels must ascend by row_span"
            );
        }
        for spec in &config.levels {
            assert!(spec.row_span > 0, "row_span must be positive");
            assert!(spec.bin_group > 0, "bin_group must be positive");
        }
        let attrs = index.attributes();
        let num_rows = index.num_rows();

        let finest = &config.levels[0];
        let fine_geom = LevelGeometry::new(finest, attrs, num_rows);
        let fine_grid = sweep_finest(index, finest, &fine_geom, threads.max(1));

        let mut levels = Vec::with_capacity(config.levels.len());
        levels.push(make_level(finest, &fine_geom, &fine_grid));
        for spec in &config.levels[1..] {
            let geom = LevelGeometry::new(spec, attrs, num_rows);
            let grid = fold_up(finest, &fine_geom, &fine_grid, spec, &geom, attrs, num_rows);
            levels.push(make_level(spec, &geom, &grid));
        }
        let hier = HierAb { levels, num_rows };
        obs::histogram!("hier.build_us").record(t0.elapsed().as_micros() as u64);
        hier
    }

    /// Reassembles a pyramid from stored pieces: group geometry is
    /// recomputed from the schema, only the specs and ABs are taken
    /// from storage.
    pub fn from_serialized(
        num_rows: usize,
        attributes: &[AttributeMeta],
        parts: Vec<(HierLevelSpec, ApproximateBitmap)>,
    ) -> Self {
        let levels = parts
            .into_iter()
            .map(|(spec, ab)| {
                let geom = LevelGeometry::new(&spec, attributes, num_rows);
                HierLevel {
                    row_span: spec.row_span,
                    bin_group: spec.bin_group,
                    group_offsets: geom.group_offsets,
                    num_groups: geom.num_groups,
                    num_spans: geom.num_spans,
                    ab,
                }
            })
            .collect();
        HierAb { levels, num_rows }
    }

    /// Rows the pyramid covers.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The levels, finest first.
    pub fn levels(&self) -> &[HierLevel] {
        &self.levels
    }

    /// The finest (first) level — the planner's descent signal.
    pub fn finest(&self) -> &HierLevel {
        &self.levels[0]
    }

    /// The geometry this pyramid was built with — lets a repair path
    /// rebuild a sibling shard's pyramid identically.
    pub fn config(&self) -> HierConfig {
        HierConfig {
            levels: self.levels.iter().map(HierLevel::spec).collect(),
        }
    }

    /// Walks the pyramid coarsest-to-finest over the query's row
    /// interval, returning the surviving row intervals plus pruning
    /// accounting. Pure — the caller decides which counters to bump.
    ///
    /// An empty `ranges` list (vacuous AND: every row matches) or a
    /// degenerate row interval returns the input interval unpruned.
    pub fn prune(&self, query: &RectQuery) -> HierPrune {
        let mut out = HierPrune::default();
        if query.row_lo > query.row_hi {
            return out;
        }
        if query.ranges.is_empty() {
            out.intervals.push((query.row_lo, query.row_hi));
            return out;
        }
        let mut intervals = vec![(query.row_lo, query.row_hi)];
        // Coarsest level first: one cheap probe can discard a 65536-row
        // region before the finer level spends any work on it.
        for level in self.levels.iter().rev() {
            let mut next: Vec<(usize, usize)> = Vec::new();
            for &(lo, hi) in &intervals {
                for span in (lo / level.row_span)..=(hi / level.row_span) {
                    let s_lo = (span * level.row_span).max(lo);
                    let s_hi = ((span + 1) * level.row_span - 1).min(hi);
                    if level.span_survives(span, &query.ranges) {
                        match next.last_mut() {
                            // Merge adjacent survivors into one run.
                            Some(last) if last.1 + 1 == s_lo => last.1 = s_hi,
                            _ => next.push((s_lo, s_hi)),
                        }
                    } else {
                        out.regions_pruned += 1;
                        out.rows_skipped += (s_hi - s_lo + 1) as u64;
                    }
                }
            }
            intervals = next;
            if intervals.is_empty() {
                break;
            }
        }
        out.intervals = intervals;
        out
    }

    /// Total pyramid storage in bytes (all level ABs).
    pub fn size_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.ab.size_bytes()).sum()
    }
}

/// Derived per-level geometry: span count, per-attribute group
/// offsets, total group columns.
struct LevelGeometry {
    num_spans: usize,
    group_offsets: Vec<usize>,
    num_groups: usize,
}

impl LevelGeometry {
    fn new(spec: &HierLevelSpec, attrs: &[AttributeMeta], num_rows: usize) -> Self {
        let mut group_offsets = Vec::with_capacity(attrs.len());
        let mut total = 0usize;
        for a in attrs {
            group_offsets.push(total);
            total += a.cardinality.div_ceil(spec.bin_group) as usize;
        }
        LevelGeometry {
            num_spans: num_rows.div_ceil(spec.row_span),
            group_offsets,
            num_groups: total,
        }
    }
}

/// Probe-sweeps the base AB for the finest level's occupancy grid
/// (`grid[span * num_groups + group_col]`), chunking independent spans
/// across `threads` workers. A region is occupied at the first
/// positive cell test; a clean region costs `rows × bins` short-
/// circuiting probes (≈2 bit reads each at 50% fill).
fn sweep_finest(
    index: &AbIndex,
    spec: &HierLevelSpec,
    geom: &LevelGeometry,
    threads: usize,
) -> Vec<bool> {
    let sweep_spans = |span_lo: usize, span_hi: usize| -> Vec<bool> {
        let attrs = index.attributes();
        let num_rows = index.num_rows();
        let mut grid = vec![false; (span_hi - span_lo) * geom.num_groups];
        for span in span_lo..span_hi {
            let row_lo = span * spec.row_span;
            let row_hi = ((span + 1) * spec.row_span).min(num_rows);
            let base = (span - span_lo) * geom.num_groups;
            for (a, meta) in attrs.iter().enumerate() {
                let groups = meta.cardinality.div_ceil(spec.bin_group);
                for g in 0..groups {
                    let bin_lo = g * spec.bin_group;
                    let bin_hi = ((g + 1) * spec.bin_group).min(meta.cardinality);
                    let cell = base + geom.group_offsets[a] + g as usize;
                    'cells: for row in row_lo..row_hi {
                        for bin in bin_lo..bin_hi {
                            if index.test_cell(row, a, bin) {
                                grid[cell] = true;
                                break 'cells;
                            }
                        }
                    }
                }
            }
        }
        grid
    };
    if threads <= 1 || geom.num_spans <= 1 {
        return sweep_spans(0, geom.num_spans);
    }
    let chunk = geom.num_spans.div_ceil(threads);
    let pieces: Vec<Vec<bool>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..geom.num_spans)
            .step_by(chunk)
            .map(|lo| {
                let hi = (lo + chunk).min(geom.num_spans);
                s.spawn(move || sweep_spans(lo, hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("hier sweep thread panicked"))
            .collect()
    });
    pieces.concat()
}

/// Folds the finest level's occupancy upward into a coarser grid: a
/// coarse region is occupied iff it intersects an occupied finest
/// region. Intersection (not containment) handles non-multiple
/// geometries; it can only over-mark, which is the safe direction.
fn fold_up(
    fine_spec: &HierLevelSpec,
    fine_geom: &LevelGeometry,
    fine_grid: &[bool],
    spec: &HierLevelSpec,
    geom: &LevelGeometry,
    attrs: &[AttributeMeta],
    num_rows: usize,
) -> Vec<bool> {
    let mut grid = vec![false; geom.num_spans * geom.num_groups];
    for f_span in 0..fine_geom.num_spans {
        let row_lo = f_span * fine_spec.row_span;
        let row_hi = ((f_span + 1) * fine_spec.row_span).min(num_rows) - 1;
        for (a, meta) in attrs.iter().enumerate() {
            let f_groups = meta.cardinality.div_ceil(fine_spec.bin_group);
            for fg in 0..f_groups {
                if !fine_grid
                    [f_span * fine_geom.num_groups + fine_geom.group_offsets[a] + fg as usize]
                {
                    continue;
                }
                let bin_lo = fg * fine_spec.bin_group;
                let bin_hi = ((fg + 1) * fine_spec.bin_group).min(meta.cardinality) - 1;
                for span in (row_lo / spec.row_span)..=(row_hi / spec.row_span) {
                    for g in (bin_lo / spec.bin_group)..=(bin_hi / spec.bin_group) {
                        grid[span * geom.num_groups + geom.group_offsets[a] + g as usize] = true;
                    }
                }
            }
        }
    }
    grid
}

/// Materializes a level AB from its occupancy grid: sized to the
/// occupied count at α = [`LEVEL_ALPHA`], double hashing, column
/// mapper over the level's group columns.
fn make_level(spec: &HierLevelSpec, geom: &LevelGeometry, grid: &[bool]) -> HierLevel {
    let occupied = grid.iter().filter(|&&b| b).count();
    let n_bits = next_pow2((occupied.max(1) as u64) * LEVEL_ALPHA);
    let mut ab = ApproximateBitmap::new(
        n_bits,
        LEVEL_K,
        HashFamily::DoubleHashing,
        CellMapper::for_columns(geom.num_groups.max(1)),
    );
    for span in 0..geom.num_spans {
        for col in 0..geom.num_groups {
            if grid[span * geom.num_groups + col] {
                ab.insert(span as u64, col as u64);
            }
        }
    }
    HierLevel {
        row_span: spec.row_span,
        bin_group: spec.bin_group,
        group_offsets: geom.group_offsets.clone(),
        num_groups: geom.num_groups,
        num_spans: geom.num_spans,
        ab,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Level;
    use crate::config::AbConfig;
    use bitmap::{AttrRange, BinnedColumn, BinnedTable};

    /// A clustered table: bin = row / 250 over 8 bins × 2000 rows, so
    /// most (span × group) regions are provably empty at small spans.
    fn clustered_table(rows: usize, card: u32) -> BinnedTable {
        let seg = rows / card as usize;
        BinnedTable::new(vec![BinnedColumn::new(
            "v",
            (0..rows)
                .map(|r| ((r / seg.max(1)) as u32).min(card - 1))
                .collect(),
            card,
        )])
    }

    fn small_config() -> HierConfig {
        HierConfig {
            levels: vec![
                HierLevelSpec {
                    row_span: 64,
                    bin_group: 2,
                },
                HierLevelSpec {
                    row_span: 256,
                    bin_group: 4,
                },
            ],
        }
    }

    #[test]
    fn pruned_rows_equal_flat_rows() {
        let t = clustered_table(2000, 8);
        // α = 32 keeps base-AB false positives rare enough that some
        // regions actually prune; correctness holds at any α.
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(32));
        let hier = HierAb::build(&idx, &small_config());
        for (lo, hi) in [(0u32, 0u32), (2, 3), (7, 7), (0, 7)] {
            let q = RectQuery::new(vec![AttrRange::new(0, lo, hi)], 0, 1999);
            let flat = idx.execute_rect(&q);
            let prune = hier.prune(&q);
            let mut pruned_rows = Vec::new();
            for &(a, b) in &prune.intervals {
                let sub = RectQuery::new(q.ranges.clone(), a, b);
                pruned_rows.extend(idx.execute_rect(&sub));
            }
            assert_eq!(pruned_rows, flat, "bins {lo}..={hi}");
            // Total coverage never exceeds the query interval.
            let kept: usize = prune.intervals.iter().map(|&(a, b)| b - a + 1).sum();
            assert_eq!(kept as u64 + prune.rows_skipped, 2000);
        }
    }

    #[test]
    fn narrow_queries_actually_prune() {
        let t = clustered_table(2000, 8);
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(32));
        let hier = HierAb::build(&idx, &small_config());
        // Bin 0 lives in rows 0..250; spans past ~256 must die. The
        // query range 0..=1 maps entirely into group 0.
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 1)], 0, 1999);
        let prune = hier.prune(&q);
        assert!(
            prune.rows_skipped > 1000,
            "expected most rows pruned, skipped only {}",
            prune.rows_skipped
        );
        assert!(prune.regions_pruned > 0);
    }

    #[test]
    fn empty_ranges_and_degenerate_intervals_do_not_prune() {
        let t = clustered_table(512, 8);
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(16));
        let hier = HierAb::build(&idx, &small_config());
        let vacuous = RectQuery::new(vec![], 10, 100);
        let p = hier.prune(&vacuous);
        assert_eq!(p.intervals, vec![(10, 100)]);
        assert_eq!(p.regions_pruned, 0);
        let degenerate = RectQuery {
            ranges: vec![AttrRange::new(0, 0, 1)],
            row_lo: 100,
            row_hi: 10,
        };
        assert!(hier.prune(&degenerate).intervals.is_empty());
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let t = clustered_table(2000, 8);
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(16));
        let seq = HierAb::build(&idx, &small_config());
        for threads in [2usize, 3, 8] {
            let par = HierAb::build_parallel(&idx, &small_config(), threads);
            assert_eq!(par.levels().len(), seq.levels().len());
            for (a, b) in par.levels().iter().zip(seq.levels()) {
                assert_eq!(a.ab().bits(), b.ab().bits(), "x{threads}");
                assert_eq!(a.ab().inserted(), b.ab().inserted(), "x{threads}");
            }
        }
    }

    #[test]
    fn coarse_levels_cover_finest_occupancy() {
        // Any query surviving the finest level alone must also survive
        // the full coarse-to-fine walk (coarser levels only widen).
        let t = clustered_table(2000, 8);
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(32));
        let full = HierAb::build(&idx, &small_config());
        let fine_only = HierAb::build(
            &idx,
            &HierConfig {
                levels: vec![small_config().levels[0]],
            },
        );
        for bin in 0..8u32 {
            let q = RectQuery::new(vec![AttrRange::new(0, bin, bin)], 0, 1999);
            let fine = fine_only.prune(&q);
            let both = full.prune(&q);
            // Every row kept by the fine-only walk is kept by the full
            // walk's finest level too, so coverage can only shrink via
            // *valid* coarse pruning: both must keep the same rows.
            let covers = |p: &HierPrune, row: usize| {
                p.intervals.iter().any(|&(a, b)| (a..=b).contains(&row))
            };
            for &(a, b) in &fine.intervals {
                for row in a..=b {
                    if idx.execute_rows(&[row], &q.ranges).len() == 1 {
                        assert!(covers(&both, row), "bin {bin} row {row} lost");
                    }
                }
            }
        }
    }

    #[test]
    fn serialization_roundtrip_preserves_pruning() {
        let t = clustered_table(1024, 8);
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(32));
        let hier = HierAb::build(&idx, &small_config());
        let parts: Vec<(HierLevelSpec, ApproximateBitmap)> = hier
            .levels()
            .iter()
            .map(|l| (l.spec(), l.ab().clone()))
            .collect();
        let back = HierAb::from_serialized(idx.num_rows(), idx.attributes(), parts);
        assert_eq!(back.config(), hier.config());
        for bin in 0..8u32 {
            let q = RectQuery::new(vec![AttrRange::new(0, bin, bin)], 0, 1023);
            assert_eq!(back.prune(&q), hier.prune(&q), "bin {bin}");
        }
    }

    #[test]
    fn occupancy_fraction_reflects_clustering() {
        let t = clustered_table(2000, 8);
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(32));
        let hier = HierAb::build(&idx, &small_config());
        // 64-row spans × 2-bin groups over perfectly clustered data:
        // each span holds 1 (occasionally 2) of the 4 groups.
        let f = hier.finest().occupancy_fraction();
        assert!(f > 0.0 && f < 0.7, "implausible occupancy {f}");
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn unordered_levels_rejected() {
        let t = clustered_table(512, 8);
        let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute));
        HierAb::build(
            &idx,
            &HierConfig {
                levels: vec![
                    HierLevelSpec {
                        row_span: 256,
                        bin_group: 4,
                    },
                    HierLevelSpec {
                        row_span: 64,
                        bin_group: 2,
                    },
                ],
            },
        );
    }
}
