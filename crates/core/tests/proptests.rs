//! Property-based tests for the Approximate Bitmap core invariants.

use ab::{AbConfig, AbIndex, Cell, Level, PrecisionStats, Sizing};
use bitmap::{AttrRange, BinnedColumn, BinnedTable, BitmapIndex, Encoding, RectQuery};
use hashkit::HashFamily;
use proptest::prelude::*;

/// Strategy: a random binned table (rows 1..150, 1..4 attributes of
/// cardinality 2..8).
fn binned_table() -> impl Strategy<Value = BinnedTable> {
    (1usize..150, 1usize..4, 2u32..8).prop_flat_map(|(rows, attrs, card)| {
        prop::collection::vec(prop::collection::vec(0..card, rows..=rows), attrs..=attrs).prop_map(
            move |cols| {
                BinnedTable::new(
                    cols.into_iter()
                        .enumerate()
                        .map(|(i, bins)| BinnedColumn::new(format!("a{i}"), bins, card))
                        .collect(),
                )
            },
        )
    })
}

fn any_level() -> impl Strategy<Value = Level> {
    prop_oneof![
        Just(Level::PerDataset),
        Just(Level::PerAttribute),
        Just(Level::PerColumn),
    ]
}

fn any_family() -> impl Strategy<Value = HashFamily> {
    prop_oneof![
        Just(HashFamily::default_independent()),
        Just(HashFamily::Sha1Split),
        Just(HashFamily::DoubleHashing),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The paper's central guarantee: false misses never occur, at any
    /// level, with any family, even with tiny ABs (α = 2).
    #[test]
    fn never_a_false_negative(table in binned_table(), level in any_level(),
                              family in any_family(), alpha in 2u64..16) {
        let cfg = AbConfig::new(level).with_alpha(alpha).with_family(family);
        let idx = AbIndex::build(&table, &cfg);
        for (a, col) in table.columns().iter().enumerate() {
            for (row, &bin) in col.bins.iter().enumerate() {
                prop_assert!(idx.test_cell(row, a, bin),
                    "false negative at ({row},{a},{bin}) level={level:?}");
            }
        }
    }

    /// Rectangular AB answers are supersets of the exact answers.
    #[test]
    fn rect_queries_have_full_recall(table in binned_table(), level in any_level(),
                                     alpha in 2u64..16, seed in any::<u64>()) {
        let idx = AbIndex::build(&table, &AbConfig::new(level).with_alpha(alpha));
        let exact = BitmapIndex::build(&table, Encoding::Equality);
        let rows = table.num_rows();
        let card = table.column(0).cardinality;
        let lo_bin = (seed % card as u64) as u32;
        let hi_bin = (lo_bin + 1).min(card - 1);
        let row_lo = (seed as usize / 7) % rows;
        let q = RectQuery::new(vec![AttrRange::new(0, lo_bin, hi_bin)], row_lo, rows - 1);
        let approx = idx.execute_rect(&q);
        let want = exact.evaluate_rows(&q);
        let stats = PrecisionStats::compare(&approx, &want);
        prop_assert_eq!(stats.false_negatives, 0);
    }

    /// The exact second step restores the precise answer.
    #[test]
    fn pruning_restores_exact(table in binned_table(), alpha in 2u64..8) {
        let idx = AbIndex::build(&table, &AbConfig::new(Level::PerAttribute).with_alpha(alpha));
        let exact = BitmapIndex::build(&table, Encoding::Equality);
        let rows = table.num_rows();
        let card = table.column(0).cardinality;
        let q = RectQuery::new(vec![AttrRange::new(0, 0, card / 2)], 0, rows - 1);
        let approx = idx.execute_rect(&q);
        let pruned = ab::prune_false_positives(&exact, &q, &approx);
        prop_assert_eq!(pruned, exact.evaluate_rows(&q));
    }

    /// Serialization roundtrips preserve query behaviour cell by cell.
    #[test]
    fn io_roundtrip_preserves_answers(table in binned_table(), level in any_level()) {
        let idx = AbIndex::build(&table, &AbConfig::new(level).with_alpha(4));
        let back = ab::from_bytes(&ab::to_bytes(&idx)).unwrap();
        for (a, col) in table.columns().iter().enumerate() {
            for row in (0..table.num_rows()).step_by(7) {
                for bin in 0..col.cardinality {
                    let c = [Cell::new(row, a, bin)];
                    prop_assert_eq!(idx.retrieve_cells(&c), back.retrieve_cells(&c));
                }
            }
        }
    }

    /// Sizing by minimum precision always meets the target (theory).
    #[test]
    fn min_precision_sizing_meets_target(s in 1u64..1_000_000, p in 0.5f64..0.999) {
        let params = Sizing::MinPrecision(p).params(s, None);
        prop_assert!(params.expected_precision(s) >= p - 1e-6,
            "s={} p={}: params {:?}", s, p, params);
    }

    /// FP theory sanity: precision is monotone in α for optimal k.
    #[test]
    fn precision_monotone_in_alpha(a1 in 1u64..32, a2 in 1u64..32) {
        let (lo, hi) = (a1.min(a2), a1.max(a2));
        prop_assume!(lo != hi);
        let p_lo = ab::precision(ab::optimal_k(lo as f64), lo as f64);
        let p_hi = ab::precision(ab::optimal_k(hi as f64), hi as f64);
        prop_assert!(p_hi >= p_lo - 1e-12);
    }

    /// Deserializing arbitrary bytes must fail cleanly, never panic or
    /// over-allocate.
    #[test]
    fn from_bytes_rejects_garbage(mut bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = ab::from_bytes(&bytes); // must not panic
        // Also with a valid magic+version prefix and garbage after.
        let mut prefixed = b"ABIX\x01\x00".to_vec();
        prefixed.append(&mut bytes);
        let _ = ab::from_bytes(&prefixed);
    }

    /// Bit-flipping a valid serialization either still decodes (benign
    /// field) or errors — never panics.
    #[test]
    fn from_bytes_survives_bitflips(flip_byte in 0usize..200, flip_bit in 0u8..8) {
        let table = BinnedTable::new(vec![
            BinnedColumn::new("a", vec![0, 1, 2, 1, 0], 3),
        ]);
        let idx = AbIndex::build(&table, &AbConfig::new(Level::PerAttribute).with_alpha(8));
        let mut bytes = ab::to_bytes(&idx);
        let pos = flip_byte % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        let _ = ab::from_bytes(&bytes); // must not panic
    }

    /// Counting AB: any insert/remove interleaving that never removes
    /// an absent cell keeps all live cells present.
    #[test]
    fn counting_ab_interleaving(ops in prop::collection::vec((0u64..64, any::<bool>()), 1..120)) {
        use ab::CountingAb;
        use hashkit::CellMapper;
        let mut cab = CountingAb::new(1 << 10, 3,
            HashFamily::default_independent(), CellMapper::RowOnly);
        let mut live: std::collections::HashMap<u64, u32> = Default::default();
        for (key, is_insert) in ops {
            if is_insert {
                cab.insert(key, 0);
                *live.entry(key).or_default() += 1;
            } else if live.get(&key).copied().unwrap_or(0) > 0 {
                cab.remove(key, 0);
                *live.get_mut(&key).unwrap() -= 1;
            }
        }
        for (&key, &count) in &live {
            if count > 0 {
                prop_assert!(cab.contains(key, 0), "false negative for {key}");
            }
        }
    }
}
