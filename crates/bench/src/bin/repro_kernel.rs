//! Probe-kernel throughput: scalar vs batched rect execution.
//!
//! Reproduces the DESIGN.md §13 claim that the batched,
//! prefetch-pipelined kernel dominates the row-at-a-time reference
//! loop once the AB falls out of the last-level cache: hash state is
//! hoisted per (attribute, bin), first-probe addresses for a 64-row
//! batch are computed and prefetched up front, and probes resolve
//! breadth-first so the k memory latencies of many rows overlap.
//!
//! Two AB sizes bracket the memory hierarchy:
//!
//! * `in_llc`  — a ~2 MiB AB; probes hit L2/L3 and the kernel's win
//!   comes from hash hoisting alone;
//! * `out_llc` — a 512 MiB AB (the benchmark machine's L3 is 260 MiB);
//!   random probes miss the cache hierarchy and the win comes from
//!   memory-level parallelism.
//!
//! Each size runs at k ∈ {4, 8, 16}. Results land in
//! `BENCH_kernel.json` (`kernel.rows_per_sec.*`, `kernel.speedup.*`)
//! next to the raw obs counters (`kernel.batches`,
//! `kernel.prefetches`, `kernel.scalar_fallbacks`).
//!
//! Usage: `repro_kernel [--quick]` — `--quick` shrinks both configs to
//! smoke-test sizes (no JSON claims should be read off a quick run).

use ab::{AbConfig, AbIndex, KernelKind, Level};
use bench::{fmt_bytes, print_table, write_bench_snapshot};
use bitmap::{AttrRange, BinnedColumn, BinnedTable, RectQuery};
use hashkit::{splitmix64, HashFamily};
use std::hint::black_box;
use std::time::Instant;

const CARD: u32 = 16;
const KS: [usize; 3] = [4, 8, 16];

struct SizeConfig {
    name: &'static str,
    rows: usize,
    alpha: u64,
}

/// Deterministic two-attribute uniform table; bins from splitmix64 so
/// generation stays O(rows) with no rand dependency.
fn make_table(rows: usize, seed: u64) -> BinnedTable {
    let mk = |attr_seed: u64| -> Vec<u32> {
        (0..rows)
            .map(|i| (splitmix64(attr_seed ^ (i as u64).wrapping_mul(0x9E37)) % CARD as u64) as u32)
            .collect()
    };
    BinnedTable::new(vec![
        BinnedColumn::new("A", mk(seed), CARD),
        BinnedColumn::new("B", mk(seed ^ 0xABCD), CARD),
    ])
}

/// Width-2 conjunctive range queries over the full row span: per row,
/// up to 2 probes on attribute A (AND short-circuit on miss), then up
/// to 2 on B — the paper's workhorse rect shape, probe-bound.
fn make_queries(rows: usize) -> Vec<RectQuery> {
    (0..4u32)
        .map(|i| {
            let lo = (i * 3) % (CARD - 1);
            RectQuery::new(
                vec![
                    AttrRange::new(0, lo, lo + 1),
                    AttrRange::new(1, (lo + 5) % (CARD - 1), (lo + 5) % (CARD - 1) + 1),
                ],
                0,
                rows - 1,
            )
        })
        .collect()
}

/// Rows scanned per second across the query batch (one warm-up pass).
fn rows_per_sec(idx: &AbIndex, queries: &[RectQuery], kernel: KernelKind) -> f64 {
    for q in queries {
        black_box(idx.try_execute_rect_with_kernel(q, kernel).unwrap());
    }
    let scanned: usize = queries.iter().map(|q| q.row_hi - q.row_lo + 1).sum();
    let start = Instant::now();
    for q in queries {
        black_box(idx.try_execute_rect_with_kernel(q, kernel).unwrap());
    }
    scanned as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // out_llc: s = rows·2 cells, s·α = 68M·32 = 2.18e9 bits — just over
    // 2^31, so the pow2 rounding lands on 2^32 bits = 512 MiB, roughly
    // 2× the benchmark machine's 260 MiB L3.
    let sizes = if quick {
        [
            SizeConfig {
                name: "in_llc",
                rows: 20_000,
                alpha: 16,
            },
            SizeConfig {
                name: "out_llc",
                rows: 60_000,
                alpha: 32,
            },
        ]
    } else {
        [
            SizeConfig {
                name: "in_llc",
                rows: 500_000,
                alpha: 16,
            },
            SizeConfig {
                name: "out_llc",
                rows: 34_000_000,
                alpha: 32,
            },
        ]
    };

    let mut snap_extras: Vec<(String, f64)> = Vec::new();
    let mut rows_out: Vec<Vec<String>> = Vec::new();

    for size in &sizes {
        let table = make_table(size.rows, 0xAB);
        let queries = make_queries(size.rows);
        for k in KS {
            let build_start = Instant::now();
            let idx = AbIndex::build(
                &table,
                &AbConfig::new(Level::PerDataset)
                    .with_alpha(size.alpha)
                    .with_k(k)
                    .with_family(HashFamily::DoubleHashing),
            );
            let build_s = build_start.elapsed().as_secs_f64();
            let ab_bytes = idx.size_bytes();

            let scalar = rows_per_sec(&idx, &queries, KernelKind::Scalar);
            let batched = rows_per_sec(&idx, &queries, KernelKind::Batched);
            let speedup = batched / scalar;

            rows_out.push(vec![
                size.name.to_string(),
                k.to_string(),
                fmt_bytes(ab_bytes as u64),
                format!("{:.1}", scalar / 1e6),
                format!("{:.1}", batched / 1e6),
                format!("{speedup:.2}x"),
                format!("{build_s:.1}s"),
            ]);
            for (kernel, v) in [("scalar", scalar), ("batched", batched)] {
                snap_extras.push((
                    format!("kernel.rows_per_sec.{kernel}.k{k}.{}", size.name),
                    v,
                ));
            }
            snap_extras.push((format!("kernel.speedup.k{k}.{}", size.name), speedup));
            snap_extras.push((format!("kernel.ab_bytes.{}", size.name), ab_bytes as f64));
        }
    }

    print_table(
        "Probe kernel: scalar vs batched (rows/sec)",
        &[
            "config",
            "k",
            "AB bytes",
            "scalar Mr/s",
            "batched Mr/s",
            "speedup",
            "build",
        ],
        &rows_out,
    );
    println!(
        "\nprefetch feature: {}",
        if ab::PREFETCH_ACTIVE {
            "active"
        } else {
            "inactive"
        }
    );

    let mut snap = obs::global().snapshot();
    for (key, v) in snap_extras {
        snap = snap.with_extra(&key, v);
    }
    snap = snap.with_extra(
        "kernel.prefetch_active",
        if ab::PREFETCH_ACTIVE { 1.0 } else { 0.0 },
    );
    if quick {
        println!("(quick mode: skipping BENCH_kernel.json)");
    } else {
        let path = write_bench_snapshot("kernel", &snap).expect("write snapshot");
        println!("wrote {}", path.display());
    }
}
