//! Regenerates the §6.4 comparison: single SHA-1 hash vs independent
//! hash functions — "in terms of precision, SHA-1 results are very
//! similar … however … SHA-1 is slower than the other hash functions".
//!
//! Usage: `cargo run --release -p bench --bin repro_hash -- [--scale F]`

use ab::AbConfig;
use bench::{ab_query_time_ms, cli, mean_precision, paper_level, print_table, Bundle};
use hashkit::HashFamily;
use std::time::Instant;

fn main() {
    let opts = cli::from_env();
    let bundle = Bundle::new(datagen::uniform_dataset(opts.scale, opts.seed));
    let queries = bundle.queries(bundle.ds.rows() / 10, opts.seed + 1);

    let families: [(&str, HashFamily); 3] = [
        ("independent", HashFamily::default_independent()),
        ("sha1_split", HashFamily::Sha1Split),
        ("double_hash", HashFamily::DoubleHashing),
    ];
    let mut rows = Vec::new();
    for (name, family) in &families {
        let cfg = AbConfig::new(paper_level("uniform"))
            .with_alpha(16)
            .with_family(family.clone());
        let start = Instant::now();
        let ab_idx = bundle.ab(&cfg);
        let build_ms = start.elapsed().as_secs_f64() * 1e3;
        let precision = mean_precision(&ab_idx, &bundle.exact, &queries);
        let query_ms = ab_query_time_ms(&ab_idx, &queries);
        rows.push(vec![
            name.to_string(),
            format!("{precision:.4}"),
            format!("{build_ms:.1}"),
            format!("{query_ms:.4}"),
        ]);
    }
    print_table(
        "Section 6.4: Single Hash Function (SHA-1) vs Independent Hash Functions (uniform, alpha=16)",
        &["family", "precision", "build ms", "query ms/query"],
        &rows,
    );
    println!(
        "\nExpected shape: precisions within noise of each other; sha1_split \
         markedly slower to build and query."
    );
}
