//! End-to-end socket throughput: req/s and client-observed latency
//! through the full network stack (client → ABQ/1 framing → epoll
//! event loop → admission → sharded service → framing → client), so
//! the repo's headline numbers include the wire, not just the index.
//!
//! Points: closed-loop rect and batch mixes at 1 and 4 connections,
//! plus one open-loop rect point at ~50% of the measured closed-loop
//! capacity (arrival-rate driven, coordinated-omission-corrected — the
//! honest tail-latency number).
//!
//! Emits `BENCH_net.json` whose `extra` map carries
//! `net.rps.<kind>.conns<N>`,
//! `net.latency_us.<kind>.conns<N>.{p50,p95,p99,p999}`, and
//! `net.total_rps.conns<N>` — the grammar `abq bench-report` folds
//! next to the in-process `BENCH_svc.json` numbers.
//!
//! Usage: `cargo run --release -p bench --bin repro_net
//!         [--scale F] [--seed N]`

use bench::{print_table, write_bench_snapshot};
use net::loadgen::{LoadgenConfig, LoadgenReport, Mix, Mode};
use net::{NetConfig, NetServer};
use std::sync::Arc;
use std::time::Duration;
use svc::{Service, SvcConfig};

const CONN_POINTS: [usize; 2] = [1, 4];
const SECS_PER_POINT: f64 = 1.5;

fn main() {
    let opts = bench::cli::from_env();
    obs::global().reset();

    let rows = ((1_000_000.0 * opts.scale) as usize).max(20_000);
    let ds = datagen::small_uniform(rows, 4, 10, opts.seed);
    let config = ab::AbConfig::new(ab::Level::PerAttribute).with_alpha(8);
    let svc = Arc::new(Service::build(
        &ds.binned,
        &config,
        &SvcConfig {
            shards: 8,
            // Span trees per request would dominate the wire overhead
            // this bench is trying to isolate.
            trace_requests: false,
            ..SvcConfig::default()
        },
    ));
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&svc), NetConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr().to_string();
    println!(
        "dataset: {rows} rows x 4 attributes, 8 shards; serving on {addr} ({} backend)",
        server.backend()
    );

    let point = |mix: Mix, conns: usize, mode: Mode| -> LoadgenReport {
        net::loadgen::run(&LoadgenConfig {
            addr: addr.clone(),
            conns,
            duration: Duration::from_secs_f64(SECS_PER_POINT),
            mode,
            mix,
            seed: opts.seed,
            batch_size: 8,
            deadline_ms: 0,
        })
        .expect("loadgen run")
    };

    // Closed-loop grid: rect and batch at each connection count.
    let mut table_rows: Vec<Vec<String>> = Vec::new();
    let mut snap = obs::global().snapshot();
    let mut rect_rps_at_max_conns = 0.0;
    for &conns in &CONN_POINTS {
        for (label, mix) in [("rect", Mix::RECT), ("batch", Mix::BATCH)] {
            let r = point(mix, conns, Mode::Closed { pipeline: 4 });
            assert_eq!(r.transport_errors, 0, "transport errors at {label}/{conns}");
            let k = r
                .kinds
                .iter()
                .find(|k| k.kind == label)
                .expect("kind has traffic");
            if label == "rect" {
                rect_rps_at_max_conns = r.rps;
            }
            table_rows.push(vec![
                label.to_string(),
                conns.to_string(),
                "closed/4".to_string(),
                format!("{:.0}", r.rps),
                k.p50.to_string(),
                k.p95.to_string(),
                k.p99.to_string(),
                k.p999.to_string(),
            ]);
            snap = snap
                .with_extra(&format!("net.rps.{label}.conns{conns}"), r.rps)
                .with_extra(&format!("net.total_rps.conns{conns}"), r.rps);
            let base = format!("net.latency_us.{label}.conns{conns}");
            snap = snap
                .with_extra(&format!("{base}.p50"), k.p50 as f64)
                .with_extra(&format!("{base}.p95"), k.p95 as f64)
                .with_extra(&format!("{base}.p99"), k.p99 as f64)
                .with_extra(&format!("{base}.p999"), k.p999 as f64);
        }
    }

    // Open-loop point: rect arrivals at half the closed-loop capacity,
    // so the latency distribution reflects service time + queueing at
    // a sustainable load rather than saturation.
    let target = (rect_rps_at_max_conns * 0.5).max(50.0);
    let conns = *CONN_POINTS.last().expect("points");
    let r = point(Mix::RECT, conns, Mode::Open { rps: target });
    if let Some(k) = r.kinds.iter().find(|k| k.kind == "rect") {
        table_rows.push(vec![
            "rect_open".to_string(),
            conns.to_string(),
            format!("open@{target:.0}"),
            format!("{:.0}", r.rps),
            k.p50.to_string(),
            k.p95.to_string(),
            k.p99.to_string(),
            k.p999.to_string(),
        ]);
        snap = snap.with_extra(&format!("net.rps.rect_open.conns{conns}"), r.rps);
        let base = format!("net.latency_us.rect_open.conns{conns}");
        snap = snap
            .with_extra(&format!("{base}.p50"), k.p50 as f64)
            .with_extra(&format!("{base}.p95"), k.p95 as f64)
            .with_extra(&format!("{base}.p99"), k.p99 as f64)
            .with_extra(&format!("{base}.p999"), k.p999 as f64);
    }

    print_table(
        "Socket throughput (full network stack, loopback TCP)",
        &[
            "kind", "conns", "mode", "req/s", "p50 µs", "p95 µs", "p99 µs", "p999 µs",
        ],
        &table_rows,
    );

    server.shutdown(Duration::from_secs(2));

    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    snap = snap
        .with_extra("net.hw_threads", hw as f64)
        .with_extra("net.dataset_rows", rows as f64);
    match write_bench_snapshot("net", &snap) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write snapshot: {e}"),
    }
}
