//! SIMD-wave probe-kernel throughput: scalar vs batched vs simd.
//!
//! Reproduces the DESIGN.md §14 claim that vector gather waves beat
//! the scalar-read batched kernel once the AB is DRAM-resident: the
//! batched kernel already overlaps the batch's probe latencies, but
//! still issues one scalar load per lane per wave; the simd kernel
//! fetches up to [`ab::SIMD_WAVE`] lanes' AB words per gather
//! instruction and tests their bits with vector shifts, raising the
//! number of independent misses the core keeps in flight per cycle of
//! issue work. Batch depth is the adaptive policy's choice
//! (DRAM-resident → 256-lane pipelines).
//!
//! Two AB sizes bracket the memory hierarchy:
//!
//! * `in_llc`  — a ~2 MiB AB; probes hit L2/L3, gathers mostly save
//!   issue bandwidth;
//! * `out_llc` — a 1 GiB AB, ≥ 2× the benchmark machine's 260 MiB L3
//!   (the acceptance bar for the speedup claim); random probes miss
//!   the whole hierarchy.
//!
//! Each size runs k ∈ {4, 8, 16} × {scalar, batched64, batched,
//! simd}. Results land in `BENCH_simd.json` (`kernel.rows_per_sec.*`,
//! `kernel.speedup.*` vs scalar,
//! `kernel.simd_speedup_vs_batched64.*` vs the PR 4 kernel) next to
//! the raw obs counters (`kernel.simd_waves`, `kernel.scalar_waves`,
//! `kernel.batch_rows` histogram). Compare against
//! `BENCH_kernel.json` with `abq bench-report`.
//!
//! Usage: `repro_simd [--quick]` — `--quick` shrinks both configs to
//! smoke-test sizes (no JSON claims should be read off a quick run).

use ab::{AbConfig, AbIndex, BatchRows, KernelKind, KernelOpts, Level};
use bench::{fmt_bytes, print_table, write_bench_snapshot};
use bitmap::{AttrRange, BinnedColumn, BinnedTable, RectQuery};
use hashkit::{splitmix64, HashFamily};
use std::hint::black_box;
use std::time::Instant;

const CARD: u32 = 16;
const KS: [usize; 3] = [4, 8, 16];

/// The measured engines. `batched64` is exactly the PR 4 kernel
/// (scalar waves, fixed 64-row batches) — the baseline the simd
/// speedup acceptance bar is defined against; `batched` is the same
/// wave loop at the adaptive depth, isolating the adaptive-batch
/// contribution from the gather contribution.
fn kernels() -> [(&'static str, KernelOpts); 4] {
    [
        ("scalar", KernelOpts::new(KernelKind::Scalar)),
        (
            "batched64",
            KernelOpts::new(KernelKind::Batched).with_batch_rows(BatchRows::Fixed(64)),
        ),
        ("batched", KernelOpts::new(KernelKind::Batched)),
        ("simd", KernelOpts::new(KernelKind::Simd)),
    ]
}

struct SizeConfig {
    name: &'static str,
    rows: usize,
    alpha: u64,
    /// Queries per measured pass — fewer on the 1 GiB config keeps
    /// wall clock sane without changing the per-row rates.
    queries: usize,
}

/// Deterministic two-attribute uniform table; bins from splitmix64 so
/// generation stays O(rows) with no rand dependency.
fn make_table(rows: usize, seed: u64) -> BinnedTable {
    let mk = |attr_seed: u64| -> Vec<u32> {
        (0..rows)
            .map(|i| (splitmix64(attr_seed ^ (i as u64).wrapping_mul(0x9E37)) % CARD as u64) as u32)
            .collect()
    };
    BinnedTable::new(vec![
        BinnedColumn::new("A", mk(seed), CARD),
        BinnedColumn::new("B", mk(seed ^ 0xABCD), CARD),
    ])
}

/// Width-2 conjunctive range queries over the full row span: per row,
/// up to 2 probes on attribute A (AND short-circuit on miss), then up
/// to 2 on B — the paper's workhorse rect shape, probe-bound.
fn make_queries(rows: usize, n: usize) -> Vec<RectQuery> {
    (0..n as u32)
        .map(|i| {
            let lo = (i * 3) % (CARD - 1);
            RectQuery::new(
                vec![
                    AttrRange::new(0, lo, lo + 1),
                    AttrRange::new(1, (lo + 5) % (CARD - 1), (lo + 5) % (CARD - 1) + 1),
                ],
                0,
                rows - 1,
            )
        })
        .collect()
}

/// Rows scanned per second across the query batch (one warm-up pass).
fn rows_per_sec(idx: &AbIndex, queries: &[RectQuery], opts: KernelOpts) -> f64 {
    for q in queries {
        black_box(idx.try_execute_rect_with_opts(q, opts).unwrap());
    }
    let scanned: usize = queries.iter().map(|q| q.row_hi - q.row_lo + 1).sum();
    let start = Instant::now();
    for q in queries {
        black_box(idx.try_execute_rect_with_opts(q, opts).unwrap());
    }
    scanned as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // out_llc: s = rows·2 cells, s·α = 68M·2·32 = 4.35e9 bits — just
    // over 2^32, so the pow2 rounding lands on 2^33 bits = 1 GiB,
    // ~4× the benchmark machine's 260 MiB L3 (the acceptance bar is
    // ≥ 2× L3).
    let sizes = if quick {
        [
            SizeConfig {
                name: "in_llc",
                rows: 20_000,
                alpha: 16,
                queries: 4,
            },
            SizeConfig {
                name: "out_llc",
                rows: 60_000,
                alpha: 32,
                queries: 2,
            },
        ]
    } else {
        [
            SizeConfig {
                name: "in_llc",
                rows: 500_000,
                alpha: 16,
                queries: 4,
            },
            SizeConfig {
                name: "out_llc",
                rows: 68_000_000,
                alpha: 32,
                queries: 2,
            },
        ]
    };

    let mut snap_extras: Vec<(String, f64)> = Vec::new();
    let mut rows_out: Vec<Vec<String>> = Vec::new();

    for size in &sizes {
        let table = make_table(size.rows, 0xAB);
        let queries = make_queries(size.rows, size.queries);
        for k in KS {
            let build_start = Instant::now();
            let idx = AbIndex::build(
                &table,
                &AbConfig::new(Level::PerDataset)
                    .with_alpha(size.alpha)
                    .with_k(k)
                    .with_family(HashFamily::DoubleHashing),
            );
            let build_s = build_start.elapsed().as_secs_f64();
            let ab_bytes = idx.size_bytes();

            let mut rates = [0.0f64; 4];
            for (i, (_, opts)) in kernels().iter().enumerate() {
                rates[i] = rows_per_sec(&idx, &queries, *opts);
            }
            let [scalar, batched64, batched, simd] = rates;

            rows_out.push(vec![
                size.name.to_string(),
                k.to_string(),
                fmt_bytes(ab_bytes as u64),
                format!("{:.1}", scalar / 1e6),
                format!("{:.1}", batched64 / 1e6),
                format!("{:.1}", batched / 1e6),
                format!("{:.1}", simd / 1e6),
                format!("{:.2}x", simd / scalar),
                format!("{:.2}x", simd / batched64),
                format!("{build_s:.0}s"),
            ]);
            for (i, (name, _)) in kernels().iter().enumerate() {
                snap_extras.push((
                    format!("kernel.rows_per_sec.{name}.k{k}.{}", size.name),
                    rates[i],
                ));
            }
            snap_extras.push((format!("kernel.speedup.k{k}.{}", size.name), simd / scalar));
            snap_extras.push((
                format!("kernel.simd_speedup_vs_batched64.k{k}.{}", size.name),
                simd / batched64,
            ));
            snap_extras.push((format!("kernel.ab_bytes.{}", size.name), ab_bytes as f64));
            snap_extras.push((
                format!("kernel.batch_rows.{}", size.name),
                idx.adaptive_batch_rows() as f64,
            ));
        }
    }

    print_table(
        "Probe kernel: scalar vs batched vs simd (rows/sec, adaptive batch)",
        &[
            "config",
            "k",
            "AB bytes",
            "scalar Mr/s",
            "b64 Mr/s",
            "batched Mr/s",
            "simd Mr/s",
            "vs scalar",
            "vs b64",
            "build",
        ],
        &rows_out,
    );
    let engine = ab::active_simd_engine();
    println!(
        "\nsimd engine: {} (compiled: {}), prefetch: {}, cache model: L2 {} / LLC {}",
        engine.map_or("none (scalar waves)".to_string(), |e| e.to_string()),
        ab::SIMD_COMPILED,
        if ab::PREFETCH_ACTIVE {
            "active"
        } else {
            "inactive"
        },
        fmt_bytes(ab::CacheModel::get().l2_bytes),
        fmt_bytes(ab::CacheModel::get().llc_bytes),
    );

    let mut snap = obs::global().snapshot();
    for (key, v) in snap_extras {
        snap = snap.with_extra(&key, v);
    }
    snap = snap
        .with_extra(
            "kernel.prefetch_active",
            if ab::PREFETCH_ACTIVE { 1.0 } else { 0.0 },
        )
        .with_extra(
            "kernel.simd_compiled",
            if ab::SIMD_COMPILED { 1.0 } else { 0.0 },
        )
        .with_extra("kernel.simd_engine_active", engine.is_some() as u8 as f64);
    if quick {
        println!("(quick mode: skipping BENCH_simd.json)");
    } else {
        let path = write_bench_snapshot("simd", &snap).expect("write snapshot");
        println!("wrote {}", path.display());
    }
}
