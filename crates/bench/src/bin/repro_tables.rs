//! Regenerates the paper's Tables 3–7.
//!
//! * Table 3 — data-set descriptions and WAH compression (measured on
//!   the generated data at `--scale`, default 0.02).
//! * Tables 4–6 — AB sizes per level as a function of α. These are
//!   closed-form (§4.2), so they are printed at the full paper scale
//!   regardless of `--scale`; per-column sizes use the equi-depth bin
//!   occupancies `⌈N/C⌉`.
//! * Table 7 — the query-generation parameters.
//!
//! Usage: `cargo run --release -p bench --bin repro_tables -- [--table N] [--scale F]`

use ab::ab_size_bytes;
use bench::{cli, fmt_bytes, metrics_workload, print_table, write_bench_snapshot, Bundle};

/// Paper-scale structural parameters of the three data sets
/// (Table 3): name, rows, attributes, bins per attribute.
const PAPER_SHAPES: [(&str, u64, u64, u64); 3] = [
    ("Uniform", 100_000, 2, 50),
    ("Landsat", 275_465, 60, 15),
    ("HEP", 2_173_762, 6, 11),
];

const ALPHAS: [u64; 4] = [2, 4, 8, 16];

fn main() {
    let opts = cli::from_env();
    let which = opts.selector.clone().unwrap_or_else(|| "all".to_owned());
    match which.as_str() {
        "3" => table3(&opts),
        "4" => table4(),
        "5" => table5(),
        "6" => table6(),
        "7" => table7(),
        "all" => {
            table3(&opts);
            table4();
            table5();
            table6();
            table7();
        }
        other => {
            eprintln!("unknown table `{other}` (expected 3..7 or all)");
            std::process::exit(2);
        }
    }
    dump_metrics(&opts);
}

/// Runs the instrumented end-to-end workload and writes the registry
/// snapshot to `BENCH_tables.json` (CI's `metrics-smoke` step checks
/// the metric families and the `check.*` cross-check keys).
fn dump_metrics(opts: &cli::Options) {
    let snap = metrics_workload(opts.scale, opts.seed);
    match write_bench_snapshot("tables", &snap) {
        Ok(path) => println!("\nMetrics snapshot written to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write metrics snapshot: {e}");
            std::process::exit(1);
        }
    }
}

/// Table 3: Data Set Descriptions (measured at `--scale`).
fn table3(opts: &cli::Options) {
    println!(
        "Generating data sets at scale {} (use --full for paper scale)…",
        opts.scale
    );
    let bundles = Bundle::paper_bundles(opts.scale, opts.seed);
    let rows: Vec<Vec<String>> = bundles
        .iter()
        .map(|b| {
            let uncompressed = b.exact.size_bytes() as u64;
            let wah = b.wah.size_bytes() as u64;
            vec![
                b.ds.name.clone(),
                fmt_bytes(b.ds.rows() as u64),
                b.ds.attributes().to_string(),
                b.ds.total_bitmaps().to_string(),
                fmt_bytes(b.ds.total_set_bits() as u64),
                fmt_bytes(uncompressed),
                fmt_bytes(wah),
                format!("{:.2}", wah as f64 / uncompressed as f64),
            ]
        })
        .collect();
    print_table(
        "Table 3: Data Set Descriptions",
        &[
            "Data set",
            "Rows",
            "Attributes",
            "Bitmaps",
            "Setbits",
            "Uncompressed (bytes)",
            "WAH (bytes)",
            "Ratio",
        ],
        &rows,
    );
}

/// Table 4: AB size as a function of α — one AB per data set.
fn table4() {
    let rows: Vec<Vec<String>> = PAPER_SHAPES
        .iter()
        .map(|&(name, n, d, _)| {
            let s = n * d;
            let mut row = vec![name.to_owned(), "1".to_owned()];
            row.extend(ALPHAS.iter().map(|&a| fmt_bytes(ab_size_bytes(s, a))));
            row
        })
        .collect();
    print_table(
        "Table 4: AB Size (bytes) vs alpha — one AB per data set (paper scale)",
        &["Data set", "#ABs", "a=2", "a=4", "a=8", "a=16"],
        &rows,
    );
}

/// Table 5: AB size as a function of α — one AB per attribute.
fn table5() {
    let rows: Vec<Vec<String>> = PAPER_SHAPES
        .iter()
        .map(|&(name, n, d, _)| {
            let mut row = vec![name.to_owned(), d.to_string()];
            for &a in &ALPHAS {
                let single = ab_size_bytes(n, a);
                row.push(fmt_bytes(single));
                row.push(fmt_bytes(single * d));
            }
            row
        })
        .collect();
    print_table(
        "Table 5: AB Size (bytes) vs alpha — one AB per attribute (paper scale)",
        &[
            "Data set",
            "#ABs",
            "a=2 single",
            "a=2 all",
            "a=4 single",
            "a=4 all",
            "a=8 single",
            "a=8 all",
            "a=16 single",
            "a=16 all",
        ],
        &rows,
    );
}

/// Table 6: AB size as a function of α — one AB per column.
///
/// Per-column set-bit counts follow the equi-depth binning of §5.1:
/// `N mod C` columns hold `⌈N/C⌉` rows and the rest `⌊N/C⌋`.
fn table6() {
    let rows: Vec<Vec<String>> = PAPER_SHAPES
        .iter()
        .map(|&(name, n, d, c)| {
            let num_abs = d * c;
            let lo = n / c;
            let hi_cols = (n % c) * d; // columns with one extra row
            let lo_cols = num_abs - hi_cols;
            let mut row = vec![name.to_owned(), num_abs.to_string()];
            for &a in &ALPHAS {
                let total = lo_cols * ab_size_bytes(lo, a) + hi_cols * ab_size_bytes(lo + 1, a);
                row.push(fmt_bytes(total / num_abs));
                row.push(fmt_bytes(total));
            }
            row
        })
        .collect();
    print_table(
        "Table 6: AB Size (bytes) vs alpha — one AB per column (paper scale, equi-depth bins)",
        &[
            "Data set", "#ABs", "a=2 avg", "a=2 all", "a=4 avg", "a=4 all", "a=8 avg", "a=8 all",
            "a=16 avg", "a=16 all",
        ],
        &rows,
    );
}

/// Table 7: query-generation parameters. The `sel`/`r` values realize
/// the §5.4 setting: 2-dimensional queries of 4 bins per attribute,
/// row counts 100–10,000.
fn table7() {
    let rows = vec![
        vec![
            "Uniform".into(),
            "2".into(),
            "0.08 (4/50 bins)".into(),
            ".1, .5, 1, 5, 10 (% rows)".into(),
        ],
        vec![
            "Landsat".into(),
            "2".into(),
            "0.27 (4/15 bins)".into(),
            ".04, .2, .4, 2, 4 (% rows)".into(),
        ],
        vec![
            "HEP".into(),
            "2".into(),
            "0.36 (4/11 bins)".into(),
            ".005, .02, .05, .2, .5 (% rows)".into(),
        ],
    ];
    print_table(
        "Table 7: Parameter Values for Query Generation (q = 100)",
        &["Data set", "qdim", "sel", "r"],
        &rows,
    );
}
