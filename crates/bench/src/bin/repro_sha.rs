//! Regenerates Table 1: one SHA-1 digest split into k=10 partial hash
//! values of 16 bits each (AB size 2^16).
//!
//! Usage: `cargo run --release -p bench --bin repro_sha`

use bench::print_table;
use hashkit::{sha1, split_digest};

fn main() {
    let x = 42u64; // an arbitrary hash string F(i, j)
    let digest = sha1(&x.to_le_bytes());
    let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
    println!("hash string x = {x}");
    println!("SHA-1(x)      = {hex}");

    let k = 10;
    let m = 16;
    let parts = split_digest(x, k, m);
    let rows: Vec<Vec<String>> = parts
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            vec![
                format!("H{i}"),
                format!("bits {}..{}", i * m as usize, (i + 1) * m as usize),
                format!("{p:#06x}"),
                p.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1: Single Hash Function — 160-bit SHA-1 output split into 10 sets of 16 bits",
        &[
            "hash",
            "digest bits",
            "value (hex)",
            "value (dec, AB index)",
        ],
        &rows,
    );
}
