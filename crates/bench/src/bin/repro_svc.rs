//! Service-layer throughput: req/s through the sharded concurrent
//! query service at 1, 2, 4 and 8 worker threads, against one shared
//! sharded index (8 row-range shards).
//!
//! Emits `BENCH_svc.json` (an `obs` registry snapshot) whose `extra`
//! map carries `svc.rps.threadsN` for each point plus
//! `svc.speedup.8v1`, and client-side **exact** latency percentiles
//! `svc.latency_us.<kind>.threads<N>.{p50,p95,p99}` for the `rect`
//! and `batch` query kinds (computed from every request's wall time,
//! nearest-rank — not the streaming sketch the live `/metrics`
//! endpoint serves, so the two can be cross-checked). On a multi-core
//! machine the 8-thread point is expected to clear 3× the 1-thread
//! point; on a single hardware thread the numbers stay flat — the
//! snapshot additionally records `svc.hw_threads` so readers can
//! interpret the scaling.
//!
//! Usage: `cargo run --release -p bench --bin repro_svc
//!         [--scale F] [--seed N] [--queries N]`

use bench::{print_table, write_bench_snapshot};
use bitmap::RectQuery;
use datagen::QueryGenParams;
use std::sync::Arc;
use svc::{Service, ShardedIndex, SvcConfig};

const THREAD_POINTS: [usize; 4] = [1, 2, 4, 8];
const SHARDS: usize = 8;
const BATCH: usize = 8;

/// Exact nearest-rank percentile over sorted latencies.
fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One measured point: every request's latency in µs, plus req/s.
struct Point {
    threads: usize,
    rps: f64,
    elapsed: f64,
    lat_us: Vec<u64>,
}

impl Point {
    fn percentiles(&self) -> (u64, u64, u64) {
        (
            pct(&self.lat_us, 50.0),
            pct(&self.lat_us, 95.0),
            pct(&self.lat_us, 99.0),
        )
    }
}

/// Replays the workload through `clients` client threads, each
/// issuing `per_client` requests of one kind, timing every request.
fn run_point(
    svc: &Arc<Service>,
    workload: &Arc<Vec<RectQuery>>,
    threads: usize,
    per_client: usize,
    batched: bool,
) -> Point {
    let started = std::time::Instant::now();
    let clients: Vec<_> = (0..threads)
        .map(|c| {
            let svc = Arc::clone(svc);
            let workload = Arc::clone(workload);
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let at = std::time::Instant::now();
                    if batched {
                        let lo = (c * per_client + i * BATCH) % workload.len();
                        let chunk: Vec<RectQuery> = (0..BATCH)
                            .map(|j| workload[(lo + j) % workload.len()].clone())
                            .collect();
                        svc.query_batch(&chunk).expect("batch failed");
                    } else {
                        let q = &workload[(c * per_client + i) % workload.len()];
                        svc.query_rect(q).expect("query failed");
                    }
                    lat.push(at.elapsed().as_micros() as u64);
                }
                lat
            })
        })
        .collect();
    let mut lat_us: Vec<u64> = Vec::new();
    for c in clients {
        lat_us.extend(c.join().expect("client panicked"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    lat_us.sort_unstable();
    Point {
        threads,
        rps: (threads * per_client) as f64 / elapsed,
        elapsed,
        lat_us,
    }
}

fn main() {
    let opts = bench::cli::from_env();
    obs::global().reset();

    // One data set, one sharded index — each thread point gets its own
    // pool over a clone of the same shards, so the work per request is
    // identical across points.
    let rows = ((2_000_000.0 * opts.scale) as usize).max(10_000);
    let ds = datagen::small_uniform(rows, 4, 10, opts.seed);
    let config = ab::AbConfig::new(ab::Level::PerAttribute).with_alpha(8);
    let index = ShardedIndex::build(&ds.binned, &config, SHARDS, false);
    println!(
        "dataset: {} rows x 4 attributes; {} shards, {} AB bytes",
        rows,
        index.num_shards(),
        index.size_bytes()
    );

    let params = QueryGenParams::paper_default(&ds.binned, (rows / 10).max(100), opts.seed ^ 0x77);
    let workload: Arc<Vec<RectQuery>> = Arc::new(datagen::generate(&ds.binned, &params));
    let per_client = (opts.queries / 4).max(8);

    let mut rect_points = Vec::new();
    let mut batch_points = Vec::new();
    for &threads in &THREAD_POINTS {
        let svc = Arc::new(Service::from_index(
            index.clone(),
            &SvcConfig {
                threads,
                queue_capacity: 4096,
                // The bench measures the query path itself; per-request
                // span trees would be pure overhead here (and are
                // covered by their own tests).
                trace_requests: false,
                ..SvcConfig::default()
            },
        ));
        // As many client threads as workers, each replaying the same
        // deterministic slice of the workload.
        rect_points.push(run_point(&svc, &workload, threads, per_client, false));
        batch_points.push(run_point(
            &svc,
            &workload,
            threads,
            (per_client / BATCH).max(4),
            true,
        ));
    }

    let rows_out: Vec<Vec<String>> = rect_points
        .iter()
        .map(|p| {
            let (p50, p95, p99) = p.percentiles();
            vec![
                p.threads.to_string(),
                format!("{:.0}", p.rps),
                format!("{:.3}", p.elapsed),
                format!("{:.2}x", p.rps / rect_points[0].rps),
                p50.to_string(),
                p95.to_string(),
                p99.to_string(),
            ]
        })
        .collect();
    print_table(
        "Service throughput (sharded concurrent query service, rect)",
        &[
            "threads",
            "req/s",
            "seconds",
            "vs 1 thread",
            "p50 µs",
            "p95 µs",
            "p99 µs",
        ],
        &rows_out,
    );
    let batch_rows_out: Vec<Vec<String>> = batch_points
        .iter()
        .map(|p| {
            let (p50, p95, p99) = p.percentiles();
            vec![
                p.threads.to_string(),
                format!("{:.0}", p.rps),
                p50.to_string(),
                p95.to_string(),
                p99.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Batched requests ({BATCH} rects per request)"),
        &["threads", "req/s", "p50 µs", "p95 µs", "p99 µs"],
        &batch_rows_out,
    );

    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let speedup = rect_points[3].rps / rect_points[0].rps;
    println!("\n8-thread speedup over 1 thread: {speedup:.2}x ({hw} hardware threads)");

    let mut snap = obs::global()
        .snapshot()
        .with_extra("svc.speedup.8v1", speedup)
        .with_extra("svc.hw_threads", hw as f64)
        .with_extra("svc.queries_per_client", per_client as f64)
        .with_extra("svc.dataset_rows", rows as f64);
    for p in &rect_points {
        snap = snap.with_extra(&format!("svc.rps.threads{}", p.threads), p.rps);
    }
    for (kind, points) in [("rect", &rect_points), ("batch", &batch_points)] {
        for p in points.iter() {
            let (p50, p95, p99) = p.percentiles();
            let base = format!("svc.latency_us.{kind}.threads{}", p.threads);
            snap = snap
                .with_extra(&format!("{base}.p50"), p50 as f64)
                .with_extra(&format!("{base}.p95"), p95 as f64)
                .with_extra(&format!("{base}.p99"), p99 as f64);
        }
    }
    match write_bench_snapshot("svc", &snap) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write snapshot: {e}"),
    }
}
