//! Service-layer throughput: req/s through the sharded concurrent
//! query service at 1, 2, 4 and 8 worker threads, against one shared
//! sharded index (8 row-range shards).
//!
//! Emits `BENCH_svc.json` (an `obs` registry snapshot) whose `extra`
//! map carries `svc.rps.threadsN` for each point plus
//! `svc.speedup.8v1`. On a multi-core machine the 8-thread point is
//! expected to clear 3× the 1-thread point; on a single hardware
//! thread the numbers stay flat — the snapshot additionally records
//! `svc.hw_threads` so readers can interpret the scaling.
//!
//! Usage: `cargo run --release -p bench --bin repro_svc
//!         [--scale F] [--seed N] [--queries N]`

use bench::{print_table, write_bench_snapshot};
use bitmap::RectQuery;
use datagen::QueryGenParams;
use std::sync::Arc;
use svc::{Service, ShardedIndex, SvcConfig};

const THREAD_POINTS: [usize; 4] = [1, 2, 4, 8];
const SHARDS: usize = 8;

fn main() {
    let opts = bench::cli::from_env();
    obs::global().reset();

    // One data set, one sharded index — each thread point gets its own
    // pool over a clone of the same shards, so the work per request is
    // identical across points.
    let rows = ((2_000_000.0 * opts.scale) as usize).max(10_000);
    let ds = datagen::small_uniform(rows, 4, 10, opts.seed);
    let config = ab::AbConfig::new(ab::Level::PerAttribute).with_alpha(8);
    let index = ShardedIndex::build(&ds.binned, &config, SHARDS, false);
    println!(
        "dataset: {} rows x 4 attributes; {} shards, {} AB bytes",
        rows,
        index.num_shards(),
        index.size_bytes()
    );

    let params = QueryGenParams::paper_default(&ds.binned, (rows / 10).max(100), opts.seed ^ 0x77);
    let workload: Arc<Vec<RectQuery>> = Arc::new(datagen::generate(&ds.binned, &params));
    let per_client = (opts.queries / 4).max(8);

    let mut rps_points = Vec::new();
    for &threads in &THREAD_POINTS {
        let svc = Arc::new(Service::from_index(
            index.clone(),
            &SvcConfig {
                threads,
                queue_capacity: 4096,
                ..SvcConfig::default()
            },
        ));
        // As many client threads as workers, each replaying the same
        // deterministic slice of the workload.
        let started = std::time::Instant::now();
        let clients: Vec<_> = (0..threads)
            .map(|c| {
                let svc = Arc::clone(&svc);
                let workload = Arc::clone(&workload);
                std::thread::spawn(move || {
                    for i in 0..per_client {
                        let q = &workload[(c * per_client + i) % workload.len()];
                        svc.query_rect(q).expect("query failed");
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client panicked");
        }
        let elapsed = started.elapsed().as_secs_f64();
        let total = (threads * per_client) as f64;
        let rps = total / elapsed;
        rps_points.push((threads, rps, elapsed));
    }

    let rows_out: Vec<Vec<String>> = rps_points
        .iter()
        .map(|(t, rps, s)| {
            vec![
                t.to_string(),
                format!("{rps:.0}"),
                format!("{s:.3}"),
                format!("{:.2}x", rps / rps_points[0].1),
            ]
        })
        .collect();
    print_table(
        "Service throughput (sharded concurrent query service)",
        &["threads", "req/s", "seconds", "vs 1 thread"],
        &rows_out,
    );

    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let speedup = rps_points[3].1 / rps_points[0].1;
    println!("\n8-thread speedup over 1 thread: {speedup:.2}x ({hw} hardware threads)");

    let mut snap = obs::global()
        .snapshot()
        .with_extra("svc.speedup.8v1", speedup)
        .with_extra("svc.hw_threads", hw as f64)
        .with_extra("svc.queries_per_client", per_client as f64)
        .with_extra("svc.dataset_rows", rows as f64);
    for (threads, rps, _) in &rps_points {
        snap = snap.with_extra(&format!("svc.rps.threads{threads}"), *rps);
    }
    match write_bench_snapshot("svc", &snap) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write snapshot: {e}"),
    }
}
