//! Codec shootout: every compressed-bitmap representation in the
//! workspace over the paper's three data sets.
//!
//! Extends Table 3's WAH column with BBC (the paper's other §2.2.1
//! codec), EWAH (WAH's 64-bit descendant), and a Roaring-style chunked
//! bitmap (where the field went after the run-length era), plus the
//! AND-query cost of each — grounding the paper's "BBC compresses
//! better, WAH operates faster" claim and the modern context.
//!
//! Usage: `cargo run --release -p bench --bin repro_codecs -- [--scale F]`

use bench::{cli, fmt_bytes, print_table, time_ms, Bundle};
use bitmap::BitVec;
use roar::RoaringBitmap;
use wah::{BbcBitmap, EwahBitmap, WahBitmap};

fn main() {
    let opts = cli::from_env();
    println!(
        "Codec comparison at scale {} (seed {})",
        opts.scale, opts.seed
    );
    let bundles = Bundle::paper_bundles(opts.scale, opts.seed);

    let mut size_rows = Vec::new();
    let mut time_rows = Vec::new();
    for b in &bundles {
        // Collect all equality bin bitmaps of the data set.
        let bins: Vec<BitVec> = b
            .exact
            .attributes()
            .iter()
            .flat_map(|a| a.bitmaps.iter().cloned())
            .collect();
        let verbatim: usize = bins.iter().map(BitVec::size_bytes).sum();

        let wah: Vec<WahBitmap> = bins.iter().map(WahBitmap::from_bitvec).collect();
        let bbc: Vec<BbcBitmap> = bins.iter().map(BbcBitmap::from_bitvec).collect();
        let ewah: Vec<EwahBitmap> = bins.iter().map(EwahBitmap::from_bitvec).collect();
        let roar: Vec<RoaringBitmap> = bins
            .iter()
            .map(|bv| bv.iter_ones().map(|p| p as u32).collect())
            .collect();

        size_rows.push(vec![
            b.ds.name.clone(),
            fmt_bytes(verbatim as u64),
            fmt_bytes(wah.iter().map(WahBitmap::size_bytes).sum::<usize>() as u64),
            fmt_bytes(bbc.iter().map(BbcBitmap::size_bytes).sum::<usize>() as u64),
            fmt_bytes(ewah.iter().map(EwahBitmap::size_bytes).sum::<usize>() as u64),
            fmt_bytes(roar.iter().map(RoaringBitmap::size_bytes).sum::<usize>() as u64),
        ]);

        // Pairwise AND over the first 40 bin pairs: the §2.2.1 "WAH is
        // 2-20x faster than BBC" operation.
        let pairs: Vec<(usize, usize)> = (0..bins.len().saturating_sub(1).min(40))
            .map(|i| (i, i + 1))
            .collect();
        let wah_ms = time_ms(|| {
            for &(i, j) in &pairs {
                std::hint::black_box(wah[i].and(&wah[j]));
            }
        });
        let bbc_ms = time_ms(|| {
            for &(i, j) in &pairs {
                std::hint::black_box(bbc[i].and(&bbc[j]));
            }
        });
        let ewah_ms = time_ms(|| {
            for &(i, j) in &pairs {
                std::hint::black_box(ewah[i].and(&ewah[j]));
            }
        });
        let roar_ms = time_ms(|| {
            for &(i, j) in &pairs {
                std::hint::black_box(roar[i].and(&roar[j]));
            }
        });
        let verb_ms = time_ms(|| {
            for &(i, j) in &pairs {
                std::hint::black_box(bins[i].and(&bins[j]));
            }
        });
        time_rows.push(vec![
            b.ds.name.clone(),
            format!("{verb_ms:.2}"),
            format!("{wah_ms:.2}"),
            format!("{bbc_ms:.2}"),
            format!("{ewah_ms:.2}"),
            format!("{roar_ms:.2}"),
            format!("{:.1}x", bbc_ms / wah_ms.max(1e-9)),
        ]);
    }

    print_table(
        "Compressed sizes per codec (bytes, all equality bin bitmaps)",
        &["data set", "verbatim", "WAH", "BBC", "EWAH", "Roaring"],
        &size_rows,
    );
    print_table(
        "Pairwise AND over 40 bin pairs (ms total)",
        &[
            "data set", "verbatim", "WAH", "BBC", "EWAH", "Roaring", "BBC/WAH",
        ],
        &time_rows,
    );
    println!(
        "\nExpected shape (paper §2.2.1): BBC ≤ WAH in size, WAH 2-20x faster \
         than BBC in operations; EWAH and Roaring bracket both on modern data."
    );
}
