//! Regenerates the paper's Figures 8–14 as printed data series.
//!
//! * Figures 8–9 — theoretical FP rate curves (closed form, §4.1).
//! * Figure 10 — precision vs hash-function choice: (a) single hash
//!   functions across AB sizes m, (b) hash families across k.
//! * Figure 11 — precision vs (a) α, (b) k, (c) rows queried.
//! * Figure 12 — AB execution time vs α.
//! * Figure 13 — AB execution time vs k.
//! * Figure 14 — execution time WAH vs AB vs rows queried, including
//!   the ~15% crossover check.
//! * `reorder` — the §2.2.1 row-reordering ablation: natural vs
//!   lexicographic vs Gray-code row order, measured as bit transitions
//!   and compressed size under WAH, BBC, and Roaring.
//!
//! Usage: `cargo run --release -p bench --bin repro_figures --
//!         [--figure 8|9|10a|10b|11a|11b|11c|12|13|14|reorder|all]
//!         [--scale F] [--queries N] [--seed N]`

use ab::{AbConfig, Sizing};
use bench::{
    ab_query_time_ms, cli, mean_precision, mean_tuples, paper_alpha, paper_level, print_table,
    wah_query_time_ms, write_bench_snapshot, Bundle,
};
use hashkit::{HashFamily, HashKind};

fn main() {
    let opts = cli::from_env();
    let which = opts.selector.clone().unwrap_or_else(|| "all".to_owned());
    let run = |name: &str| which == "all" || which == name;
    let mut matched = false;
    if run("8") {
        fig8();
        matched = true;
    }
    if run("9") {
        fig9();
        matched = true;
    }
    if run("10a") {
        fig10a(&opts);
        matched = true;
    }
    if run("10b") {
        fig10b(&opts);
        matched = true;
    }
    if run("11a") {
        fig11a(&opts);
        matched = true;
    }
    if run("11b") {
        fig11b(&opts);
        matched = true;
    }
    if run("11c") {
        fig11c(&opts);
        matched = true;
    }
    if run("12") {
        fig12(&opts);
        matched = true;
    }
    if run("13") {
        fig13(&opts);
        matched = true;
    }
    if run("14") {
        fig14(&opts);
        matched = true;
    }
    let mut extras: Vec<(String, f64)> = Vec::new();
    if run("reorder") {
        extras.extend(reorder_ablation(&opts));
        matched = true;
    }
    if !matched {
        eprintln!("unknown figure `{which}`");
        std::process::exit(2);
    }
    // The figures above accumulate into the global registry as a side
    // effect; dump whatever this run touched, plus the reorder
    // ablation's explicit series.
    let mut snap = obs::global().snapshot();
    for (key, v) in extras {
        snap = snap.with_extra(&key, v);
    }
    match write_bench_snapshot("figures", &snap) {
        Ok(path) => println!("\nMetrics snapshot written to {}", path.display()),
        Err(e) => eprintln!("failed to write metrics snapshot: {e}"),
    }
}

/// Figure 8: theoretical false-positive rate as a function of α.
fn fig8() {
    let ks = [1usize, 2, 4, 6, 8];
    let rows: Vec<Vec<String>> = (1..=32u64)
        .filter(|a| a.is_power_of_two() || a % 4 == 0)
        .map(|alpha| {
            let mut row = vec![alpha.to_string()];
            row.extend(
                ks.iter()
                    .map(|&k| format!("{:.6}", ab::fp_rate(k, alpha as f64))),
            );
            row
        })
        .collect();
    print_table(
        "Figure 8: False Positive Rate as a function of alpha",
        &["alpha", "k=1", "k=2", "k=4", "k=6", "k=8"],
        &rows,
    );
}

/// Figure 9: theoretical false-positive rate as a function of k.
fn fig9() {
    let alphas = [2u64, 4, 8, 16];
    let rows: Vec<Vec<String>> = (1..=10usize)
        .map(|k| {
            let mut row = vec![k.to_string()];
            row.extend(
                alphas
                    .iter()
                    .map(|&a| format!("{:.6}", ab::fp_rate(k, a as f64))),
            );
            row
        })
        .collect();
    print_table(
        "Figure 9: False Positive Rate as a function of k",
        &["k", "alpha=2", "alpha=4", "alpha=8", "alpha=16"],
        &rows,
    );
    let rows: Vec<Vec<String>> = alphas
        .iter()
        .map(|&a| {
            vec![
                a.to_string(),
                ab::optimal_k(a as f64).to_string(),
                format!("{:.6}", ab::fp_rate(ab::optimal_k(a as f64), a as f64)),
            ]
        })
        .collect();
    print_table("Optimal k per alpha", &["alpha", "k*", "FP(k*)"], &rows);
}

/// Figure 10(a): measured precision of *single* hash functions (k=1)
/// as the AB size exponent m grows — uniform data, one AB per data
/// set.
fn fig10a(opts: &cli::Options) {
    let bundle = Bundle::new(datagen::uniform_dataset(opts.scale, opts.seed));
    let queries = bundle.queries(bundle.ds.rows() / 10, opts.seed + 1);
    let s = bundle.ds.total_set_bits() as u64;
    let m_exact = 64 - (s - 1).leading_zeros(); // m where AB bits ≥ set bits
                                                // Sweep far enough that the circular hash becomes injective over
                                                // x = row<<shift | col ("the precision is 1 when there are enough
                                                // bits to accommodate all rows", Fig 10a).
    let shift = 64 - (bundle.ds.total_bitmaps() as u64).leading_zeros();
    let m_inject = 64 - ((bundle.ds.rows() as u64 - 1).leading_zeros()) + shift;
    let ms: Vec<u32> = (m_exact.saturating_sub(2)..=m_inject.max(m_exact + 4)).collect();

    let functions: Vec<(&str, HashFamily)> = vec![
        (
            "circular",
            HashFamily::Independent(vec![HashKind::Circular]),
        ),
        ("column_group", HashFamily::ColumnGroup { num_columns: 0 }),
        ("bkdr", HashFamily::Independent(vec![HashKind::Bkdr])),
        ("djb", HashFamily::Independent(vec![HashKind::Djb])),
        ("pjw", HashFamily::Independent(vec![HashKind::Pjw])),
        ("sha1", HashFamily::Sha1Split),
    ];
    let mut rows = Vec::new();
    for m in &ms {
        let mut row = vec![m.to_string()];
        for (_, family) in &functions {
            let cfg = AbConfig::new(ab::Level::PerDataset)
                .with_family(family.clone())
                .with_k(1);
            let cfg = AbConfig {
                sizing: Sizing::MaxBits(*m),
                ..cfg
            };
            let ab_idx = bundle.ab(&cfg);
            row.push(format!(
                "{:.3}",
                mean_precision(&ab_idx, &bundle.exact, &queries)
            ));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("m")
        .chain(functions.iter().map(|(n, _)| *n))
        .collect();
    print_table(
        "Figure 10(a): Precision vs AB size exponent m, single hash functions (k=1)",
        &headers,
        &rows,
    );
}

/// Figure 10(b): measured precision of hash families as k grows.
fn fig10b(opts: &cli::Options) {
    let bundle = Bundle::new(datagen::uniform_dataset(opts.scale, opts.seed));
    let queries = bundle.queries(bundle.ds.rows() / 10, opts.seed + 1);
    let families: Vec<(&str, HashFamily)> = vec![
        ("independent", HashFamily::default_independent()),
        ("sha1_split", HashFamily::Sha1Split),
        ("double_hash", HashFamily::DoubleHashing),
        ("column_group", HashFamily::ColumnGroup { num_columns: 0 }),
    ];
    let mut rows = Vec::new();
    for k in 1..=10usize {
        let mut row = vec![k.to_string()];
        for (_, family) in &families {
            let cfg = AbConfig::new(ab::Level::PerDataset)
                .with_alpha(8)
                .with_family(family.clone())
                .with_k(k);
            let ab_idx = bundle.ab(&cfg);
            row.push(format!(
                "{:.3}",
                mean_precision(&ab_idx, &bundle.exact, &queries)
            ));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("k")
        .chain(families.iter().map(|(n, _)| *n))
        .collect();
    print_table(
        "Figure 10(b): Precision vs k for hash families (alpha=8, per-dataset AB)",
        &headers,
        &rows,
    );
}

/// Figure 11(a): precision as a function of α, all data sets.
fn fig11a(opts: &cli::Options) {
    let bundles = Bundle::paper_bundles(opts.scale, opts.seed);
    let mut rows = Vec::new();
    for alpha in [2u64, 4, 8, 16] {
        let mut row = vec![alpha.to_string()];
        for b in &bundles {
            let ab_idx = b.ab(&AbConfig::new(paper_level(&b.ds.name)).with_alpha(alpha));
            let queries = b.queries(b.ds.rows() / 10, opts.seed + 1);
            row.push(format!(
                "{:.3}",
                mean_precision(&ab_idx, &b.exact, &queries)
            ));
        }
        rows.push(row);
    }
    print_table(
        "Figure 11(a): Precision as a function of alpha",
        &["alpha", "uniform", "landsat", "hep"],
        &rows,
    );
    // The power-of-two round-up (§4.2) makes the *effective* α
    // scale-dependent; print it so small-scale runs are interpretable
    // against the paper's full-scale numbers.
    for b in &bundles {
        let ab_idx = b.ab(&AbConfig::new(paper_level(&b.ds.name)).with_alpha(8));
        let eff = (ab_idx.size_bytes() * 8) as f64 / b.ds.total_set_bits() as f64;
        println!(
            "{}: nominal alpha=8 -> effective alpha={eff:.2} at this scale",
            b.ds.name
        );
    }
}

/// Figure 11(b): precision as a function of k at each data set's §6.1 α.
fn fig11b(opts: &cli::Options) {
    let bundles = Bundle::paper_bundles(opts.scale, opts.seed);
    let mut rows = Vec::new();
    for k in 1..=10usize {
        let mut row = vec![k.to_string()];
        for b in &bundles {
            let cfg = AbConfig::new(paper_level(&b.ds.name))
                .with_alpha(paper_alpha(&b.ds.name))
                .with_k(k);
            let ab_idx = b.ab(&cfg);
            let queries = b.queries(b.ds.rows() / 10, opts.seed + 1);
            row.push(format!(
                "{:.3}",
                mean_precision(&ab_idx, &b.exact, &queries)
            ));
        }
        rows.push(row);
    }
    print_table(
        "Figure 11(b): Precision as a function of k (uniform a=16, landsat a=8, hep a=8)",
        &["k", "uniform", "landsat", "hep"],
        &rows,
    );
}

/// Figure 11(c): precision as a function of the number of rows
/// queried (flat), plus the §6.2 mean-tuples-returned numbers.
fn fig11c(opts: &cli::Options) {
    let bundles = Bundle::paper_bundles(opts.scale, opts.seed);
    let fractions = [0.001f64, 0.005, 0.01, 0.05, 0.10];
    let mut rows = Vec::new();
    let mut tuple_rows = Vec::new();
    for (i, &frac) in fractions.iter().enumerate() {
        let mut row = vec![format!("{:.1}%", frac * 100.0)];
        for b in &bundles {
            let target = ((b.ds.rows() as f64 * frac) as usize).max(1);
            let ab_idx = b.paper_ab();
            let queries = b.queries(target, opts.seed + 2 + i as u64);
            row.push(format!(
                "{:.3}",
                mean_precision(&ab_idx, &b.exact, &queries)
            ));
            if i + 1 == fractions.len() {
                let (exact_t, ab_t) = mean_tuples(&ab_idx, &b.exact, &queries);
                tuple_rows.push(vec![
                    b.ds.name.clone(),
                    format!("{exact_t:.1}"),
                    format!("{ab_t:.1}"),
                ]);
            }
        }
        rows.push(row);
    }
    print_table(
        "Figure 11(c): Precision as a function of rows queried (fraction of N)",
        &["rows", "uniform", "landsat", "hep"],
        &rows,
    );
    print_table(
        "Mean tuples per query at the largest row count (exact vs AB, cf. §6.2)",
        &["data set", "exact", "AB"],
        &tuple_rows,
    );
}

/// Figure 12: AB execution time as a function of α. k is held fixed
/// so the effect shown is the paper's: "as α increases the execution
/// time decreases because the false positive rate gets smaller" —
/// fewer spurious probe continuations and fewer false OR-hits.
fn fig12(opts: &cli::Options) {
    let bundles = Bundle::paper_bundles(opts.scale, opts.seed);
    let k = 4usize;
    let mut rows = Vec::new();
    for alpha in [2u64, 4, 8, 16] {
        let mut row = vec![alpha.to_string()];
        for b in &bundles {
            let ab_idx = b.ab(&AbConfig::new(paper_level(&b.ds.name))
                .with_alpha(alpha)
                .with_k(k));
            let queries = b.queries(b.ds.rows() / 10, opts.seed + 1);
            row.push(format!("{:.4}", ab_query_time_ms(&ab_idx, &queries)));
        }
        rows.push(row);
    }
    print_table(
        "Figure 12: AB execution time (ms/query) as a function of alpha (k=4 fixed)",
        &["alpha", "uniform", "landsat", "hep"],
        &rows,
    );
}

/// Figure 13: AB execution time as a function of k.
fn fig13(opts: &cli::Options) {
    let bundles = Bundle::paper_bundles(opts.scale, opts.seed);
    let mut rows = Vec::new();
    for k in 1..=10usize {
        let mut row = vec![k.to_string()];
        for b in &bundles {
            let cfg = AbConfig::new(paper_level(&b.ds.name))
                .with_alpha(paper_alpha(&b.ds.name))
                .with_k(k);
            let ab_idx = b.ab(&cfg);
            let queries = b.queries(b.ds.rows() / 10, opts.seed + 1);
            row.push(format!("{:.4}", ab_query_time_ms(&ab_idx, &queries)));
        }
        rows.push(row);
    }
    print_table(
        "Figure 13: AB execution time (ms/query) as a function of k",
        &["k", "uniform", "landsat", "hep"],
        &rows,
    );
}

/// Figure 14: execution time WAH vs AB, varying rows queried.
///
/// Two sweeps per data set: the paper's absolute row counts (100 to
/// 10,000 rows, where the 1–3 orders-of-magnitude speedups live —
/// scaled by `--scale` off full size), and a row-fraction sweep
/// locating the crossover ("up to around 15% of the rows" in the
/// paper; earlier on modern hardware, where compressed word scans are
/// comparatively cheaper than hashing).
fn fig14(opts: &cli::Options) {
    let bundles = Bundle::paper_bundles(opts.scale, opts.seed);
    for b in &bundles {
        let ab_idx = b.paper_ab();

        // Sweep 1: the paper's absolute row counts.
        let paper_rows = [100usize, 500, 1_000, 5_000, 10_000];
        let mut rows = Vec::new();
        for (i, &pr) in paper_rows.iter().enumerate() {
            let target = (((pr as f64) * opts.scale) as usize).clamp(10, b.ds.rows());
            let queries = b.queries(target, opts.seed + 13 + i as u64);
            let ab_ms = ab_query_time_ms(&ab_idx, &queries);
            let wah_ms = wah_query_time_ms(&b.wah, &queries[..queries.len().min(20)]);
            rows.push(vec![
                pr.to_string(),
                target.to_string(),
                format!("{wah_ms:.4}"),
                format!("{ab_ms:.4}"),
                format!("{:.1}x", wah_ms / ab_ms.max(1e-9)),
            ]);
        }
        print_table(
            &format!(
                "Figure 14 ({}): WAH vs AB (ms/query), paper row counts, alpha={}",
                b.ds.name,
                paper_alpha(&b.ds.name)
            ),
            &["paper rows", "rows at scale", "WAH ms", "AB ms", "speedup"],
            &rows,
        );

        // Sweep 2: fractions of N, to find the crossover.
        let fractions = [0.001f64, 0.005, 0.01, 0.05, 0.10, 0.15, 0.20, 0.30];
        let mut rows = Vec::new();
        let mut crossover: Option<f64> = None;
        for (i, &frac) in fractions.iter().enumerate() {
            let target = ((b.ds.rows() as f64 * frac) as usize).max(1);
            let queries = b.queries(target, opts.seed + 3 + i as u64);
            let ab_ms = ab_query_time_ms(&ab_idx, &queries);
            let wah_ms = wah_query_time_ms(&b.wah, &queries[..queries.len().min(20)]);
            if crossover.is_none() && ab_ms > wah_ms {
                crossover = Some(frac);
            }
            rows.push(vec![
                format!("{:.1}%", frac * 100.0),
                target.to_string(),
                format!("{wah_ms:.4}"),
                format!("{ab_ms:.4}"),
                format!("{:.1}x", wah_ms / ab_ms.max(1e-9)),
            ]);
        }
        print_table(
            &format!(
                "Figure 14 ({}): crossover sweep (fractions of N)",
                b.ds.name
            ),
            &["rows", "abs rows", "WAH ms", "AB ms", "speedup"],
            &rows,
        );
        match crossover {
            Some(f) => println!("AB loses to WAH above ~{:.0}% of rows", f * 100.0),
            None => println!("AB faster than WAH across the whole sweep"),
        }
    }
}

/// Row-reordering ablation (§2.2.1): how much do the lexicographic
/// and Gray-code heuristics shrink run-length-compressed bitmaps on
/// the paper's data sets? Measured three ways — raw bit transitions
/// (the quantity run-length codes pay for) and the summed compressed
/// size of every bitmap under WAH, BBC, and Roaring. Returns the
/// series for `BENCH_figures.json`
/// (`figures.reorder.<dataset>.<order>.<metric>`).
fn reorder_ablation(opts: &cli::Options) -> Vec<(String, f64)> {
    use bitmap::{
        apply_permutation, gray_order, lexicographic_order, total_transitions, BinnedTable,
    };

    /// Summed compressed bytes over every bitmap of every attribute.
    fn codec_sizes(t: &BinnedTable) -> (usize, usize, usize) {
        let (mut wah_sz, mut bbc_sz, mut roar_sz) = (0usize, 0usize, 0usize);
        for col in t.columns() {
            let mut per_bin: Vec<Vec<usize>> = vec![Vec::new(); col.cardinality as usize];
            for (i, &b) in col.bins.iter().enumerate() {
                per_bin[b as usize].push(i);
            }
            for ones in &per_bin {
                wah_sz +=
                    wah::WahBitmap::from_ones(t.num_rows(), ones.iter().copied()).size_bytes();
                bbc_sz +=
                    wah::BbcBitmap::from_ones(t.num_rows(), ones.iter().copied()).size_bytes();
                let mut r = roar::RoaringBitmap::from_sorted(ones.iter().map(|&i| i as u32));
                r.optimize();
                roar_sz += r.size_bytes();
            }
        }
        (wah_sz, bbc_sz, roar_sz)
    }

    let bundles = Bundle::paper_bundles(opts.scale, opts.seed);
    let mut extras = Vec::new();
    let mut rows = Vec::new();
    for b in &bundles {
        let natural = &b.ds.binned;
        let orders: [(&str, BinnedTable); 3] = [
            ("natural", natural.clone()),
            (
                "lex",
                apply_permutation(natural, &lexicographic_order(natural)),
            ),
            ("gray", apply_permutation(natural, &gray_order(natural))),
        ];
        let base_wah = codec_sizes(natural).0 as f64;
        for (order, t) in &orders {
            let transitions = total_transitions(t);
            let (wah_sz, bbc_sz, roar_sz) = codec_sizes(t);
            rows.push(vec![
                b.ds.name.clone(),
                (*order).to_string(),
                transitions.to_string(),
                wah_sz.to_string(),
                bbc_sz.to_string(),
                roar_sz.to_string(),
                format!("{:.2}x", base_wah / wah_sz as f64),
            ]);
            for (metric, v) in [
                ("transitions", transitions as f64),
                ("wah_bytes", wah_sz as f64),
                ("bbc_bytes", bbc_sz as f64),
                ("roaring_bytes", roar_sz as f64),
            ] {
                extras.push((format!("figures.reorder.{}.{order}.{metric}", b.ds.name), v));
            }
        }
    }
    print_table(
        "Row reordering ablation: transitions and compressed bytes (WAH shrink vs natural)",
        &[
            "data set",
            "order",
            "transitions",
            "WAH B",
            "BBC B",
            "Roaring B",
            "WAH shrink",
        ],
        &rows,
    );
    extras
}
