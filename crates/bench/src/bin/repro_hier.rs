//! Hierarchical pruning: flat vs coarse-to-fine rect execution.
//!
//! Reproduces the DESIGN.md §18 claim that the [`ab::HierAb`] pyramid
//! turns large low-selectivity rects from full scans into a handful
//! of span-sized scans: a coarse miss is a definite absence, so whole
//! row-span × bin-range regions are pruned before the per-row
//! batched/SIMD kernel runs.
//!
//! The data set is **clustered** (the regime pruning exists for):
//! one 16-bin attribute laid out in contiguous runs. Bins 0–7 are
//! large head segments; bins 8–15 are graded tail clusters sized so a
//! single-bin rect on bin b selects a known fraction of the table —
//! 10 ppm (0.001 %) up to 100 000 ppm (10 %). The base AB runs at
//! α = 32 so cell false positives (~2e-7) almost never keep an empty
//! region alive, and at 68 M rows the AB is 512 MiB — ~2× the
//! benchmark machine's 260 MiB L3, so flat probes pay memory latency.
//!
//! Every measured pair is checked bit-identical (flat rows == hier
//! rows) before timing. Results land in `BENCH_hier.json`
//! (`hier.rows_per_sec.<flat|hier>.<kernel>.<rect>.<sel>`) next to
//! the raw pruning counters (`hier.regions_pruned`,
//! `hier.rows_skipped`), and fold into `abq bench-report`.
//!
//! Usage: `repro_hier [--quick]` — `--quick` shrinks to a smoke-test
//! size (no JSON claims should be read off a quick run).

use ab::{AbConfig, AbIndex, HierConfig, HierMode, KernelKind, KernelOpts, Level};
use bench::{fmt_bytes, print_table, write_bench_snapshot};
use bitmap::{AttrRange, BinnedColumn, BinnedTable, RectQuery};
use hashkit::HashFamily;
use std::hint::black_box;
use std::time::Instant;

const CARD: u32 = 16;
const KERNELS: [(KernelKind, &str); 3] = [
    (KernelKind::Scalar, "scalar"),
    (KernelKind::Batched, "batched"),
    (KernelKind::Simd, "simd"),
];
/// Selectivity sweep: (bin, ppm of the table that bin holds).
const SWEEP: [(u32, usize); 5] = [
    (15, 10),
    (14, 100),
    (13, 1_000),
    (12, 10_000),
    (11, 100_000),
];

/// Per-bin row counts: graded tail clusters at exact ppm fractions,
/// head bins splitting the remainder evenly.
fn bin_counts(rows: usize) -> [usize; 16] {
    let ppm = |p: usize| (rows * p / 1_000_000).max(1);
    let mut c = [0usize; 16];
    c[8] = ppm(50);
    c[9] = ppm(500);
    c[10] = ppm(5_000);
    c[11] = ppm(100_000);
    c[12] = ppm(10_000);
    c[13] = ppm(1_000);
    c[14] = ppm(100);
    c[15] = ppm(10);
    let tail: usize = c[8..].iter().sum();
    let head = rows - tail;
    for slot in c.iter_mut().take(8) {
        *slot = head / 8;
    }
    c[0] += head - (head / 8) * 8;
    c
}

/// One clustered attribute: bins in contiguous runs, bin order.
fn make_table(rows: usize) -> BinnedTable {
    let counts = bin_counts(rows);
    let mut bins = Vec::with_capacity(rows);
    for (b, &c) in counts.iter().enumerate() {
        bins.extend(std::iter::repeat_n(b as u32, c));
    }
    BinnedTable::new(vec![BinnedColumn::new("V", bins, CARD)])
}

/// Rows scanned per second for one query under `opts`: one warm-up
/// run, then repeat until ≥200 ms elapsed (hier runs finish in
/// microseconds; a single pass would be all timer noise).
fn rows_per_sec(idx: &AbIndex, q: &RectQuery, opts: KernelOpts) -> f64 {
    black_box(idx.try_execute_rect_with_opts(q, opts).unwrap());
    let scanned = q.num_rows() as f64;
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        black_box(idx.try_execute_rect_with_opts(q, opts).unwrap());
        iters += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= 0.2 || iters >= 64 {
            return scanned * f64::from(iters) / elapsed;
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // 68M cells · α=32 = 2.18e9 bits → pow2-rounded to 2^32 bits =
    // 512 MiB, ~2× the benchmark machine's 260 MiB L3.
    let rows: usize = if quick { 500_000 } else { 68_000_000 };

    println!("generating {rows} clustered rows…");
    let table = make_table(rows);
    let build_start = Instant::now();
    let mut idx = AbIndex::build(
        &table,
        &AbConfig::new(Level::PerDataset)
            .with_alpha(32)
            .with_k(22)
            .with_family(HashFamily::DoubleHashing),
    );
    let ab_build_s = build_start.elapsed().as_secs_f64();
    let ab_bytes = idx.size_bytes();
    let hier_start = Instant::now();
    idx.ensure_hier(&HierConfig::default());
    let hier_build_s = hier_start.elapsed().as_secs_f64();
    let pyramid_bytes = idx.hier().expect("just built").size_bytes();
    println!(
        "AB {} in {ab_build_s:.1}s, pyramid {} in {hier_build_s:.1}s",
        fmt_bytes(ab_bytes as u64),
        fmt_bytes(pyramid_bytes as u64),
    );

    // Measurement points: the full-row selectivity sweep, plus a
    // rect-size axis at the 0.1 % point (half / last-tenth windows
    // partially overlapping the tail clusters).
    let mut points: Vec<(String, String, RectQuery)> = Vec::new();
    for (bin, ppm) in SWEEP {
        points.push((
            "full".into(),
            format!("sel{ppm}ppm"),
            RectQuery::new(vec![AttrRange::new(0, bin, bin)], 0, rows - 1),
        ));
    }
    for (rect, lo) in [("half", rows / 2), ("tenth", rows - rows / 10)] {
        points.push((
            rect.into(),
            "sel1000ppm".into(),
            RectQuery::new(vec![AttrRange::new(0, 13, 13)], lo, rows - 1),
        ));
    }

    let mut snap_extras: Vec<(String, f64)> = Vec::new();
    let mut rows_out: Vec<Vec<String>> = Vec::new();
    for (rect, sel, q) in &points {
        for (kernel, kname) in KERNELS {
            let flat_opts = KernelOpts::new(kernel);
            let hier_opts = flat_opts.with_hier(HierMode::Force);
            // Bit-identity first: a pruning pyramid that changes the
            // answer is a bug, not a speedup.
            let flat_rows = idx.try_execute_rect_with_opts(q, flat_opts).unwrap();
            let hier_rows = idx.try_execute_rect_with_opts(q, hier_opts).unwrap();
            assert_eq!(
                flat_rows, hier_rows,
                "hier diverged from flat at {kname}/{rect}/{sel}"
            );
            let flat = rows_per_sec(&idx, q, flat_opts);
            let hier = rows_per_sec(&idx, q, hier_opts);
            rows_out.push(vec![
                rect.clone(),
                sel.clone(),
                kname.to_string(),
                format!("{:.1}", flat / 1e6),
                format!("{:.1}", hier / 1e6),
                format!("{:.2}x", hier / flat),
            ]);
            for (mode, v) in [("flat", flat), ("hier", hier)] {
                snap_extras.push((format!("hier.rows_per_sec.{mode}.{kname}.{rect}.{sel}"), v));
            }
        }
    }

    print_table(
        "Hierarchical pruning: flat vs coarse-to-fine (rows/sec)",
        &["rect", "sel", "kernel", "flat Mr/s", "hier Mr/s", "speedup"],
        &rows_out,
    );

    let mut snap = obs::global().snapshot();
    for (key, v) in snap_extras {
        snap = snap.with_extra(&key, v);
    }
    snap = snap
        .with_extra("hier.rows", rows as f64)
        .with_extra("hier.ab_bytes", ab_bytes as f64)
        .with_extra("hier.pyramid_bytes", pyramid_bytes as f64)
        .with_extra("hier.ab_build_s", ab_build_s)
        .with_extra("hier.pyramid_build_s", hier_build_s);
    if quick {
        println!("(quick mode: skipping BENCH_hier.json)");
    } else {
        let path = write_bench_snapshot("hier", &snap).expect("write snapshot");
        println!("wrote {}", path.display());
    }
}
