//! Hybrid exact tier: flat AB vs hier pruning vs Roaring-backed bins.
//!
//! Reproduces the DESIGN.md §19 claim that planner-calibrated exact
//! backing of hot bins turns mid-selectivity rects from k-hash-probe
//! scans into word-parallel container intersections — with **zero**
//! false positives for the backed bins, where the flat AB pays both
//! the probes and the downstream verification of its false-positive
//! rows.
//!
//! The data set is the clustered table from `repro_hier`: one 16-bin
//! attribute in contiguous runs, head bins large, tail bins graded so
//! a single-bin rect selects a known ppm fraction. The base AB runs
//! at α = 8 — the paper's bread-and-butter space point, where the
//! per-cell false-positive rate (~0.4 %) is large enough that flat
//! answers carry real verification debt. The planner's split decision
//! (density × fp rate × verify cost) backs the head bins and the
//! denser tail clusters; the thinnest bins stay AB-only, so the sweep
//! crosses the backed/unbacked boundary and both dispatch paths get
//! measured.
//!
//! Correctness is asserted before timing, not sampled: hybrid answers
//! must be a subset of flat (it only removes false positives), a
//! superset of the ground truth (100 % recall), and **exactly** the
//! ground truth for fully-backed rects. Results land in
//! `BENCH_hybrid.json`
//! (`hybrid.rows_per_sec.<flat|hier|hybrid>.<kernel>.<rect>.<sel>`,
//! `hybrid.p99_us.*`, `hybrid.fp_rows_eliminated.<rect>.<sel>`) and
//! fold into `abq bench-report` as the `## Hybrid tier` table.
//!
//! Usage: `repro_hybrid [--quick]` — `--quick` shrinks to a
//! smoke-test size (no JSON claims should be read off a quick run).

use ab::{
    AbConfig, AbIndex, HierConfig, HierMode, HybridConfig, HybridMode, KernelKind, KernelOpts,
    Level,
};
use bench::{fmt_bytes, print_table, write_bench_snapshot};
use bitmap::{AttrRange, BinnedColumn, BinnedTable, RectQuery};
use hashkit::HashFamily;
use std::hint::black_box;
use std::time::Instant;

const CARD: u32 = 16;
const KERNELS: [(KernelKind, &str); 3] = [
    (KernelKind::Scalar, "scalar"),
    (KernelKind::Batched, "batched"),
    (KernelKind::Simd, "simd"),
];
/// Selectivity sweep: (bin, ppm of the table that bin holds).
const SWEEP: [(u32, usize); 5] = [
    (15, 10),
    (14, 100),
    (13, 1_000),
    (12, 10_000),
    (11, 100_000),
];

/// Per-bin row counts: graded tail clusters at exact ppm fractions,
/// head bins splitting the remainder evenly (same layout as
/// `repro_hier` so the two snapshots compare).
fn bin_counts(rows: usize) -> [usize; 16] {
    let ppm = |p: usize| (rows * p / 1_000_000).max(1);
    let mut c = [0usize; 16];
    c[8] = ppm(50);
    c[9] = ppm(500);
    c[10] = ppm(5_000);
    c[11] = ppm(100_000);
    c[12] = ppm(10_000);
    c[13] = ppm(1_000);
    c[14] = ppm(100);
    c[15] = ppm(10);
    let tail: usize = c[8..].iter().sum();
    let head = rows - tail;
    for slot in c.iter_mut().take(8) {
        *slot = head / 8;
    }
    c[0] += head - (head / 8) * 8;
    c
}

/// One clustered attribute: bins in contiguous runs, bin order.
fn make_table(rows: usize) -> BinnedTable {
    let counts = bin_counts(rows);
    let mut bins = Vec::with_capacity(rows);
    for (b, &c) in counts.iter().enumerate() {
        bins.extend(std::iter::repeat_n(b as u32, c));
    }
    BinnedTable::new(vec![BinnedColumn::new("V", bins, CARD)])
}

/// The contiguous row range bin `b` occupies in the clustered layout —
/// the exact answer to a full-row single-bin rect.
fn truth_range(rows: usize, b: u32) -> std::ops::Range<usize> {
    let counts = bin_counts(rows);
    let start: usize = counts[..b as usize].iter().sum();
    start..start + counts[b as usize]
}

/// Rows scanned per second plus p99 per-query latency (µs) for one
/// query under `opts`: one warm-up run, then repeat until ≥200 ms
/// elapsed, recording each iteration's wall time.
fn measure(idx: &AbIndex, q: &RectQuery, opts: KernelOpts) -> (f64, f64) {
    black_box(idx.try_execute_rect_with_opts(q, opts).unwrap());
    let scanned = q.num_rows() as f64;
    let start = Instant::now();
    let mut lat_us: Vec<f64> = Vec::new();
    loop {
        let t = Instant::now();
        black_box(idx.try_execute_rect_with_opts(q, opts).unwrap());
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= 0.2 || lat_us.len() >= 64 {
            let rps = scanned * lat_us.len() as f64 / elapsed;
            lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let p99 = lat_us[(lat_us.len() * 99 / 100).min(lat_us.len() - 1)];
            return (rps, p99);
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows: usize = if quick { 400_000 } else { 16_000_000 };

    println!("generating {rows} clustered rows…");
    let table = make_table(rows);
    let build_start = Instant::now();
    let mut idx = AbIndex::build(
        &table,
        &AbConfig::new(Level::PerDataset)
            .with_alpha(8)
            .with_family(HashFamily::DoubleHashing),
    );
    let ab_build_s = build_start.elapsed().as_secs_f64();
    let ab_bytes = idx.size_bytes();
    let hier_start = Instant::now();
    idx.ensure_hier(&HierConfig::default());
    let pyramid_bytes = idx.hier().expect("just built").size_bytes();
    let hier_build_s = hier_start.elapsed().as_secs_f64();
    // min_density 1/2048 pulls the 500 ppm–1000 ppm tail clusters into
    // the exact tier while leaving the thinnest bins (≤100 ppm)
    // AB-only — the sweep's 10/100 ppm points measure the unbacked
    // fallback, the rest the containers.
    let hybrid_start = Instant::now();
    idx.ensure_hybrid(
        &table,
        &HybridConfig {
            min_density: 1.0 / 2048.0,
            ..HybridConfig::default()
        },
    );
    let hybrid_build_s = hybrid_start.elapsed().as_secs_f64();
    let tier = idx.hybrid().expect("just built");
    let (backed_bins, container_bytes) = (tier.bins().len(), tier.size_bytes());
    println!(
        "AB {} in {ab_build_s:.1}s, pyramid {} in {hier_build_s:.1}s, \
         exact tier {} ({backed_bins}/{CARD} bins backed) in {hybrid_build_s:.1}s",
        fmt_bytes(ab_bytes as u64),
        fmt_bytes(pyramid_bytes as u64),
        fmt_bytes(container_bytes as u64),
    );

    // Measurement points: the full-row selectivity sweep, plus a
    // rect-size axis at the 0.1 % point.
    let mut points: Vec<(String, String, RectQuery, Option<std::ops::Range<usize>>)> = Vec::new();
    for (bin, ppm) in SWEEP {
        points.push((
            "full".into(),
            format!("sel{ppm}ppm"),
            RectQuery::new(vec![AttrRange::new(0, bin, bin)], 0, rows - 1),
            Some(truth_range(rows, bin)),
        ));
    }
    for (rect, lo) in [("half", rows / 2), ("tenth", rows - rows / 10)] {
        points.push((
            rect.into(),
            "sel1000ppm".into(),
            RectQuery::new(vec![AttrRange::new(0, 13, 13)], lo, rows - 1),
            None,
        ));
    }

    let mut snap_extras: Vec<(String, f64)> = Vec::new();
    let mut rows_out: Vec<Vec<String>> = Vec::new();
    let mut eliminated_total = 0usize;
    for (rect, sel, q, truth) in &points {
        let mut fp_eliminated = 0usize;
        for (kernel, kname) in KERNELS {
            let flat_opts = KernelOpts::new(kernel);
            let hier_opts = flat_opts.with_hier(HierMode::Force);
            let hyb_opts = flat_opts.with_hybrid(HybridMode::Auto);
            // Correctness before timing. The hybrid answer is flat
            // minus exactly the backed bins' false positives: subset
            // of flat, superset of truth — and for a fully-backed
            // rect, truth *exactly* (zero false positives).
            let flat_rows = idx.try_execute_rect_with_opts(q, flat_opts).unwrap();
            let hier_rows = idx.try_execute_rect_with_opts(q, hier_opts).unwrap();
            let hyb_rows = idx.try_execute_rect_with_opts(q, hyb_opts).unwrap();
            assert_eq!(
                flat_rows, hier_rows,
                "hier diverged from flat at {kname}/{rect}/{sel}"
            );
            let flat_set: std::collections::HashSet<usize> = flat_rows.iter().copied().collect();
            assert!(
                hyb_rows.iter().all(|r| flat_set.contains(r)),
                "hybrid returned a row flat did not at {kname}/{rect}/{sel}"
            );
            if let Some(t) = truth {
                let backed = tier.backing(0, q.ranges[0].lo).is_some();
                if backed {
                    assert_eq!(
                        hyb_rows,
                        t.clone().collect::<Vec<_>>(),
                        "backed rect not exact at {kname}/{rect}/{sel}"
                    );
                } else {
                    let hyb_set: std::collections::HashSet<usize> =
                        hyb_rows.iter().copied().collect();
                    assert!(
                        t.clone().all(|r| hyb_set.contains(&r)),
                        "hybrid dropped a true row at {kname}/{rect}/{sel}"
                    );
                }
            }
            fp_eliminated = flat_rows.len() - hyb_rows.len();

            let (flat, flat_p99) = measure(&idx, q, flat_opts);
            let (hier, hier_p99) = measure(&idx, q, hier_opts);
            let (hyb, hyb_p99) = measure(&idx, q, hyb_opts);
            rows_out.push(vec![
                rect.clone(),
                sel.clone(),
                kname.to_string(),
                format!("{:.1}", flat / 1e6),
                format!("{:.1}", hier / 1e6),
                format!("{:.1}", hyb / 1e6),
                format!("{:.2}x", hyb / flat),
                format!("{fp_eliminated}"),
            ]);
            for (mode, rps, p99) in [
                ("flat", flat, flat_p99),
                ("hier", hier, hier_p99),
                ("hybrid", hyb, hyb_p99),
            ] {
                snap_extras.push((
                    format!("hybrid.rows_per_sec.{mode}.{kname}.{rect}.{sel}"),
                    rps,
                ));
                snap_extras.push((format!("hybrid.p99_us.{mode}.{kname}.{rect}.{sel}"), p99));
            }
        }
        snap_extras.push((
            format!("hybrid.fp_rows_eliminated.{rect}.{sel}"),
            fp_eliminated as f64,
        ));
        eliminated_total += fp_eliminated;
    }
    assert!(
        eliminated_total > 0,
        "the exact tier eliminated no false positives anywhere — \
         either α is too high for fp to exist or backing is broken"
    );

    print_table(
        "Hybrid exact tier: flat vs hier vs Roaring-backed (rows/sec)",
        &[
            "rect",
            "sel",
            "kernel",
            "flat Mr/s",
            "hier Mr/s",
            "hyb Mr/s",
            "speedup",
            "fp elim",
        ],
        &rows_out,
    );

    let mut snap = obs::global().snapshot();
    for (key, v) in snap_extras {
        snap = snap.with_extra(&key, v);
    }
    snap = snap
        .with_extra("hybrid.rows", rows as f64)
        .with_extra("hybrid.ab_bytes", ab_bytes as f64)
        .with_extra("hybrid.pyramid_bytes", pyramid_bytes as f64)
        .with_extra("hybrid.container_bytes", container_bytes as f64)
        .with_extra("hybrid.backed_bins", backed_bins as f64)
        .with_extra("hybrid.ab_build_s", ab_build_s)
        .with_extra("hybrid.build_s", hybrid_build_s);
    if quick {
        println!("(quick mode: skipping BENCH_hybrid.json)");
    } else {
        let path = write_bench_snapshot("hybrid", &snap).expect("write snapshot");
        println!("wrote {}", path.display());
    }
}
