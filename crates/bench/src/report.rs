//! `abq bench-report`: folds the `BENCH_*.json` snapshots the repro
//! binaries drop (`repro_kernel` → `BENCH_kernel.json`, `repro_simd` →
//! `BENCH_simd.json`, …) into one summary so the perf trajectory is
//! diffable across PRs.
//!
//! The snapshots are written by [`obs::Snapshot::to_json`]; the repo
//! deliberately carries no JSON dependency (serde here is a
//! derive-only facade), so this module brings its own ~100-line reader
//! for exactly that grammar: objects, strings, numbers, and the nested
//! histogram objects — anything else is a parse error, which is fine
//! because we only ever read our own output.

use std::collections::BTreeMap;

/// The parts of a `BENCH_*.json` snapshot the report consumes:
/// everything numeric, flattened to `section.path` keys
/// (`counters.kernel.batches`, `extra.kernel.rows_per_sec.simd.k8.out_llc`,
/// `histograms.ab.query.us.count`, …).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Flattened name → value map.
    pub values: BTreeMap<String, f64>,
}

impl BenchSnapshot {
    /// Parses an [`obs::Snapshot::to_json`] document.
    pub fn parse(json: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: json.as_bytes(),
            at: 0,
        };
        let mut values = BTreeMap::new();
        p.skip_ws();
        p.object(&mut values, "")?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.at));
        }
        Ok(BenchSnapshot { values })
    }

    /// Reads and parses a snapshot file.
    pub fn read(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// All `(suffix, value)` pairs whose key starts with `prefix`.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, f64)> {
        self.values
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(move |(k, v)| (&k[prefix.len()..], *v))
    }
}

/// Recursive-descent reader for the snapshot grammar. Numbers flatten
/// into the output map under dotted paths; strings are only legal as
/// keys (snapshot values are all numeric).
struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.at))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.at).copied()
    }

    /// Parses `{...}`, flattening numeric members under `prefix`.
    fn object(&mut self, out: &mut BTreeMap<String, f64>, prefix: &str) -> Result<(), String> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            let path = if prefix.is_empty() {
                key
            } else {
                format!("{prefix}.{key}")
            };
            self.expect(b':')?;
            match self.peek() {
                Some(b'{') => self.object(out, &path)?,
                // Arrays (histogram `buckets`) carry per-bucket detail
                // the report never uses; skip them structurally.
                Some(b'[') => self.skip_array()?,
                _ => {
                    let v = self.number()?;
                    out.insert(path, v);
                }
            }
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.at)),
            }
        }
    }

    /// Consumes a (possibly nested) array of numbers/arrays without
    /// recording anything.
    fn skip_array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(());
        }
        loop {
            match self.peek() {
                Some(b'[') => self.skip_array()?,
                _ => {
                    self.number()?;
                }
            }
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.at)),
            }
        }
    }

    /// Parses a quoted string. Snapshot keys are metric names (no
    /// escapes beyond `\"` and `\\` ever occur); unknown escapes are
    /// kept verbatim rather than rejected.
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.at) {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    if let Some(&next) = self.bytes.get(self.at + 1) {
                        s.push(next as char);
                        self.at += 2;
                    } else {
                        return Err("dangling escape at end of input".into());
                    }
                }
                Some(&b) => {
                    s.push(b as char);
                    self.at += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    /// Parses a JSON number (also accepts the bare `NaN`/`inf` the
    /// exporter never emits but `json_f64` guards against).
    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.at;
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

/// One row of the folded throughput report.
struct TputRow {
    source: String,
    kernel: String,
    k: String,
    size: String,
    rows_per_sec: f64,
}

/// One row of the folded hierarchical-pruning report: flat and hier
/// throughput for the same (kernel, rect shape, selectivity) point.
struct HierRow {
    source: String,
    kernel: String,
    rect: String,
    sel: String,
    flat: Option<f64>,
    hier: Option<f64>,
}

/// One row of the folded hybrid-tier report: flat, hier, and hybrid
/// throughput for the same (kernel, rect shape, selectivity) point,
/// plus the false-positive rows the exact tier eliminated there.
struct HybridRow {
    source: String,
    kernel: String,
    rect: String,
    sel: String,
    flat: Option<f64>,
    hier: Option<f64>,
    hybrid: Option<f64>,
    fp_eliminated: Option<f64>,
}

/// One row of the folded service-latency report.
struct LatRow {
    source: String,
    kind: String,
    threads: String,
    p50: Option<f64>,
    p95: Option<f64>,
    p99: Option<f64>,
}

/// One row of the folded socket (network front end) report.
struct NetRow {
    source: String,
    kind: String,
    conns: String,
    rps: Option<f64>,
    errors: Option<f64>,
    shed: Option<f64>,
    p50: Option<f64>,
    p95: Option<f64>,
    p99: Option<f64>,
    p999: Option<f64>,
}

/// Folds `BENCH_kernel.json`-style snapshots into one report:
/// a throughput table over every `kernel.rows_per_sec.<kernel>.<k>.<size>`
/// entry (with per-config speedup vs that file's scalar baseline),
/// a hierarchical-pruning table over every
/// `hier.rows_per_sec.<flat|hier>.<kernel>.<rect>.<sel>` entry,
/// a hybrid-tier table over every
/// `hybrid.rows_per_sec.<flat|hier|hybrid>.<kernel>.<rect>.<sel>`
/// entry (with the false-positive rows the exact tier eliminated),
/// plus the snapshots' kernel counters.
///
/// Returns the rendered report. **Missing** files are skipped with a
/// note so the command stays usable mid-bringup when only some
/// benches have run, but a file that exists and fails to parse is an
/// error naming the file — a malformed snapshot silently dropped from
/// the report would read as "bench regressed to nothing".
pub fn bench_report(paths: &[std::path::PathBuf]) -> Result<String, String> {
    use std::fmt::Write;
    let mut out = String::from("# Bench report\n");
    let mut rows: Vec<TputRow> = Vec::new();
    let mut loaded: Vec<(String, BenchSnapshot)> = Vec::new();
    for path in paths {
        let source = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string())
            .trim_start_matches("BENCH_")
            .to_string();
        if !path.exists() {
            let _ = writeln!(out, "- skipped: {}: not found", path.display());
            continue;
        }
        match BenchSnapshot::read(path) {
            Ok(snap) => loaded.push((source, snap)),
            Err(e) => return Err(format!("malformed bench snapshot: {e}")),
        }
    }
    for (source, snap) in &loaded {
        for (suffix, v) in snap.with_prefix("extra.kernel.rows_per_sec.") {
            // suffix = "<kernel>.<k>.<size>"
            let parts: Vec<&str> = suffix.splitn(3, '.').collect();
            if parts.len() == 3 {
                rows.push(TputRow {
                    source: source.clone(),
                    kernel: parts[0].to_string(),
                    k: parts[1].to_string(),
                    size: parts[2].to_string(),
                    rows_per_sec: v,
                });
            }
        }
    }
    // Hierarchical pruning: extra.hier.rows_per_sec.<mode>.<kernel>.<rect>.<sel>
    let mut hier: Vec<HierRow> = Vec::new();
    for (source, snap) in &loaded {
        for (suffix, v) in snap.with_prefix("extra.hier.rows_per_sec.") {
            // suffix = "<flat|hier>.<kernel>.<rect>.<sel>"
            let parts: Vec<&str> = suffix.splitn(4, '.').collect();
            let [mode, kernel, rect, sel] = parts[..] else {
                continue;
            };
            let row = match hier.iter_mut().find(|r| {
                r.source == *source && r.kernel == kernel && r.rect == rect && r.sel == sel
            }) {
                Some(r) => r,
                None => {
                    hier.push(HierRow {
                        source: source.clone(),
                        kernel: kernel.to_string(),
                        rect: rect.to_string(),
                        sel: sel.to_string(),
                        flat: None,
                        hier: None,
                    });
                    hier.last_mut().expect("just pushed")
                }
            };
            match mode {
                "flat" => row.flat = Some(v),
                "hier" => row.hier = Some(v),
                _ => {}
            }
        }
    }
    // Hybrid exact tier:
    // extra.hybrid.rows_per_sec.<flat|hier|hybrid>.<kernel>.<rect>.<sel>
    // plus extra.hybrid.fp_rows_eliminated.<rect>.<sel>.
    let mut hybrid: Vec<HybridRow> = Vec::new();
    for (source, snap) in &loaded {
        for (suffix, v) in snap.with_prefix("extra.hybrid.rows_per_sec.") {
            let parts: Vec<&str> = suffix.splitn(4, '.').collect();
            let [mode, kernel, rect, sel] = parts[..] else {
                continue;
            };
            let row = match hybrid.iter_mut().find(|r| {
                r.source == *source && r.kernel == kernel && r.rect == rect && r.sel == sel
            }) {
                Some(r) => r,
                None => {
                    hybrid.push(HybridRow {
                        source: source.clone(),
                        kernel: kernel.to_string(),
                        rect: rect.to_string(),
                        sel: sel.to_string(),
                        flat: None,
                        hier: None,
                        hybrid: None,
                        fp_eliminated: None,
                    });
                    hybrid.last_mut().expect("just pushed")
                }
            };
            match mode {
                "flat" => row.flat = Some(v),
                "hier" => row.hier = Some(v),
                "hybrid" => row.hybrid = Some(v),
                _ => {}
            }
        }
        // The eliminated-rows count is per point, not per kernel:
        // attach it to every kernel row of that point.
        for (suffix, v) in snap.with_prefix("extra.hybrid.fp_rows_eliminated.") {
            let parts: Vec<&str> = suffix.splitn(2, '.').collect();
            let [rect, sel] = parts[..] else { continue };
            for r in hybrid
                .iter_mut()
                .filter(|r| r.source == *source && r.rect == rect && r.sel == sel)
            {
                r.fp_eliminated = Some(v);
            }
        }
    }
    // Service latency percentiles: extra.svc.latency_us.<kind>.threads<N>.<p>
    let mut lat: Vec<LatRow> = Vec::new();
    for (source, snap) in &loaded {
        for (suffix, v) in snap.with_prefix("extra.svc.latency_us.") {
            // suffix = "<kind>.threads<N>.<p50|p95|p99>"
            let parts: Vec<&str> = suffix.splitn(3, '.').collect();
            let (kind, threads, p) = match parts[..] {
                [kind, t, p] => match t.strip_prefix("threads") {
                    Some(n) => (kind, n.to_string(), p),
                    None => continue,
                },
                _ => continue,
            };
            let row = match lat
                .iter_mut()
                .find(|r| r.source == *source && r.kind == kind && r.threads == threads)
            {
                Some(r) => r,
                None => {
                    lat.push(LatRow {
                        source: source.clone(),
                        kind: kind.to_string(),
                        threads,
                        p50: None,
                        p95: None,
                        p99: None,
                    });
                    lat.last_mut().expect("just pushed")
                }
            };
            match p {
                "p50" => row.p50 = Some(v),
                "p95" => row.p95 = Some(v),
                "p99" => row.p99 = Some(v),
                _ => {}
            }
        }
    }
    // Socket points from the net front end:
    // extra.net.latency_us.<kind>.conns<N>.<p> and
    // extra.net.rps.<kind>.conns<N>.
    let mut net: Vec<NetRow> = Vec::new();
    for (source, snap) in &loaded {
        let entries: Vec<(String, f64)> = snap
            .with_prefix("extra.net.")
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        for (suffix, v) in entries {
            // "latency_us.<kind>.conns<N>.<p>" or "rps.<kind>.conns<N>"
            let (kind, conns, field) = if let Some(rest) = suffix.strip_prefix("latency_us.") {
                let parts: Vec<&str> = rest.splitn(3, '.').collect();
                match parts[..] {
                    [kind, c, p] => match c.strip_prefix("conns") {
                        Some(n) => (kind.to_string(), n.to_string(), p.to_string()),
                        None => continue,
                    },
                    _ => continue,
                }
            } else if let Some((field, rest)) = ["rps.", "errors.", "shed."]
                .iter()
                .find_map(|p| suffix.strip_prefix(p).map(|rest| (&p[..p.len() - 1], rest)))
            {
                let parts: Vec<&str> = rest.splitn(2, '.').collect();
                match parts[..] {
                    [kind, c] => match c.strip_prefix("conns") {
                        Some(n) => (kind.to_string(), n.to_string(), field.to_string()),
                        None => continue,
                    },
                    _ => continue,
                }
            } else {
                continue;
            };
            let row = match net
                .iter_mut()
                .find(|r| r.source == *source && r.kind == kind && r.conns == conns)
            {
                Some(r) => r,
                None => {
                    net.push(NetRow {
                        source: source.clone(),
                        kind,
                        conns,
                        rps: None,
                        errors: None,
                        shed: None,
                        p50: None,
                        p95: None,
                        p99: None,
                        p999: None,
                    });
                    net.last_mut().expect("just pushed")
                }
            };
            match field.as_str() {
                "rps" => row.rps = Some(v),
                "errors" => row.errors = Some(v),
                "shed" => row.shed = Some(v),
                "p50" => row.p50 = Some(v),
                "p95" => row.p95 = Some(v),
                "p99" => row.p99 = Some(v),
                "p999" => row.p999 = Some(v),
                _ => {}
            }
        }
    }
    if rows.is_empty() && hier.is_empty() && hybrid.is_empty() && lat.is_empty() && net.is_empty() {
        out.push_str(
            "no kernel.rows_per_sec, hier.rows_per_sec, hybrid.rows_per_sec, svc.latency_us, \
             or net.* entries found\n",
        );
        return Ok(out);
    }
    if !rows.is_empty() {
        out.push_str(
            "\n## Probe-kernel throughput (Mrows/s; speedup vs same file's scalar)\n\n\
             source  kernel   k    size      Mrows/s  speedup\n\
             ------  -------  ---  -------  --------  -------\n",
        );
        rows.sort_by(|a, b| {
            (&a.source, &a.size, &a.k, &a.kernel).cmp(&(&b.source, &b.size, &b.k, &b.kernel))
        });
        for r in &rows {
            let scalar = rows
                .iter()
                .find(|s| {
                    s.source == r.source && s.k == r.k && s.size == r.size && s.kernel == "scalar"
                })
                .map(|s| s.rows_per_sec);
            let speedup = match scalar {
                Some(s) if s > 0.0 => format!("{:.2}x", r.rows_per_sec / s),
                _ => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<6}  {:<7}  {:<3}  {:<7}  {:>8.2}  {:>7}",
                r.source,
                r.kernel,
                r.k,
                r.size,
                r.rows_per_sec / 1e6,
                speedup
            );
        }
    }
    if !hier.is_empty() {
        out.push_str(
            "\n## Hierarchical pruning (Mrows/s; speedup hier vs flat)\n\n\
             source  kernel   rect     sel          flat M/s   hier M/s  speedup\n\
             ------  -------  -------  ----------  ---------  ---------  -------\n",
        );
        hier.sort_by(|a, b| {
            // Selectivity points sort numerically (sel10ppm < sel800ppm).
            let sa = a.sel.trim_start_matches("sel").trim_end_matches("ppm");
            let sb = b.sel.trim_start_matches("sel").trim_end_matches("ppm");
            let (na, nb) = (
                sa.parse::<u64>().unwrap_or(u64::MAX),
                sb.parse::<u64>().unwrap_or(u64::MAX),
            );
            (&a.source, &a.kernel, &a.rect, na).cmp(&(&b.source, &b.kernel, &b.rect, nb))
        });
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{:.2}", v / 1e6),
            None => "-".to_string(),
        };
        for r in &hier {
            let speedup = match (r.flat, r.hier) {
                (Some(f), Some(h)) if f > 0.0 => format!("{:.2}x", h / f),
                _ => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<6}  {:<7}  {:<7}  {:<10}  {:>9}  {:>9}  {:>7}",
                r.source,
                r.kernel,
                r.rect,
                r.sel,
                fmt(r.flat),
                fmt(r.hier),
                speedup
            );
        }
    }
    if !hybrid.is_empty() {
        out.push_str(
            "\n## Hybrid tier (Mrows/s; speedup hybrid vs flat; fp rows eliminated per query)\n\n\
             source  kernel   rect     sel           flat M/s   hier M/s    hyb M/s  speedup  fp elim\n\
             ------  -------  -------  ----------   ---------  ---------  ---------  -------  -------\n",
        );
        hybrid.sort_by(|a, b| {
            let sa = a.sel.trim_start_matches("sel").trim_end_matches("ppm");
            let sb = b.sel.trim_start_matches("sel").trim_end_matches("ppm");
            let (na, nb) = (
                sa.parse::<u64>().unwrap_or(u64::MAX),
                sb.parse::<u64>().unwrap_or(u64::MAX),
            );
            (&a.source, &a.kernel, &a.rect, na).cmp(&(&b.source, &b.kernel, &b.rect, nb))
        });
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{:.2}", v / 1e6),
            None => "-".to_string(),
        };
        for r in &hybrid {
            let speedup = match (r.flat, r.hybrid) {
                (Some(f), Some(h)) if f > 0.0 => format!("{:.2}x", h / f),
                _ => "-".to_string(),
            };
            let fp = match r.fp_eliminated {
                Some(v) => format!("{v:.0}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<6}  {:<7}  {:<7}  {:<10}   {:>9}  {:>9}  {:>9}  {:>7}  {:>7}",
                r.source,
                r.kernel,
                r.rect,
                r.sel,
                fmt(r.flat),
                fmt(r.hier),
                fmt(r.hybrid),
                speedup,
                fp
            );
        }
    }
    if !lat.is_empty() {
        out.push_str(
            "\n## Service latency (µs, client-observed, in-process)\n\n\
             source  kind   threads   p50 µs   p95 µs   p99 µs\n\
             ------  -----  -------  -------  -------  -------\n",
        );
        lat.sort_by(|a, b| {
            let ta = a.threads.parse::<u64>().unwrap_or(0);
            let tb = b.threads.parse::<u64>().unwrap_or(0);
            (&a.source, &a.kind, ta).cmp(&(&b.source, &b.kind, tb))
        });
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.0}"),
            None => "-".to_string(),
        };
        for r in &lat {
            let _ = writeln!(
                out,
                "{:<6}  {:<5}  {:>7}  {:>7}  {:>7}  {:>7}",
                r.source,
                r.kind,
                r.threads,
                fmt(r.p50),
                fmt(r.p95),
                fmt(r.p99)
            );
        }
    }
    if !net.is_empty() {
        out.push_str(
            "\n## Socket latency (µs, client-observed over loopback TCP)\n\n\
             source  kind       conns     req/s      err     shed   p50 µs   p95 µs   p99 µs  p999 µs\n\
             ------  ---------  -----  --------  -------  -------  -------  -------  -------  -------\n",
        );
        net.sort_by(|a, b| {
            let ca = a.conns.parse::<u64>().unwrap_or(0);
            let cb = b.conns.parse::<u64>().unwrap_or(0);
            (&a.source, &a.kind, ca).cmp(&(&b.source, &b.kind, cb))
        });
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.0}"),
            None => "-".to_string(),
        };
        for r in &net {
            let _ = writeln!(
                out,
                "{:<6}  {:<9}  {:>5}  {:>8}  {:>7}  {:>7}  {:>7}  {:>7}  {:>7}  {:>7}",
                r.source,
                r.kind,
                r.conns,
                fmt(r.rps),
                fmt(r.errors),
                fmt(r.shed),
                fmt(r.p50),
                fmt(r.p95),
                fmt(r.p99),
                fmt(r.p999)
            );
        }
    }
    out.push_str("\n## Environment\n\n");
    for (source, snap) in &loaded {
        for key in [
            "extra.kernel.ab_bytes.in_llc",
            "extra.kernel.ab_bytes.out_llc",
            "extra.kernel.prefetch_active",
            "extra.kernel.simd_compiled",
            "extra.kernel.batch_rows.out_llc",
        ] {
            if let Some(v) = snap.get(key) {
                let _ = writeln!(out, "{source}: {} = {v}", &key["extra.".len()..]);
            }
        }
        for key in ["counters.kernel.simd_waves", "counters.kernel.scalar_waves"] {
            if let Some(v) = snap.get(key) {
                let _ = writeln!(out, "{source}: {} = {v}", &key["counters.".len()..]);
            }
        }
        // Socket reliability: connection-level failures and heals.
        for prefix in ["net.transport_errors.", "net.reconnects."] {
            for (suffix, v) in snap.with_prefix(&format!("extra.{prefix}")) {
                let _ = writeln!(out, "{source}: {prefix}{suffix} = {v}");
            }
        }
        // Pruning effectiveness from the hier repro.
        for key in ["counters.hier.regions_pruned", "counters.hier.rows_skipped"] {
            if let Some(v) = snap.get(key) {
                let _ = writeln!(out, "{source}: {} = {v}", &key["counters.".len()..]);
            }
        }
        // Exact-tier shape and the planner's split from the hybrid
        // repro.
        for key in [
            "extra.hybrid.backed_bins",
            "extra.hybrid.container_bytes",
            "counters.planner.split.exact",
            "counters.planner.split.ab",
            "counters.hybrid.fp_rows_eliminated",
        ] {
            if let Some(v) = snap.get(key) {
                let label = key
                    .strip_prefix("extra.")
                    .or_else(|| key.strip_prefix("counters."))
                    .unwrap_or(key);
                let _ = writeln!(out, "{source}: {label} = {v}");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "counters": {
    "kernel.batches": 12,
    "kernel.simd_waves": 900
  },
  "histograms": {
    "ab.query.us": { "count": 3, "sum": 42, "min": 1, "max": 40 }
  },
  "extra": {
    "kernel.ab_bytes.out_llc": 536870912,
    "kernel.rows_per_sec.scalar.k8.out_llc": 2.5e6,
    "kernel.rows_per_sec.simd.k8.out_llc": 10e6
  }
}
"#;

    #[test]
    fn parses_snapshot_shape() {
        let s = BenchSnapshot::parse(SAMPLE).unwrap();
        assert_eq!(s.get("counters.kernel.batches"), Some(12.0));
        assert_eq!(s.get("histograms.ab.query.us.count"), Some(3.0));
        assert_eq!(
            s.get("extra.kernel.rows_per_sec.simd.k8.out_llc"),
            Some(10e6)
        );
        assert_eq!(s.get("nope"), None);
        let ks: Vec<_> = s
            .with_prefix("extra.kernel.rows_per_sec.")
            .map(|(k, _)| k.to_string())
            .collect();
        assert_eq!(ks, vec!["scalar.k8.out_llc", "simd.k8.out_llc"]);
    }

    #[test]
    fn parses_real_exporter_output() {
        let r = obs::Registry::new();
        r.counter("report.test.counter").add(5);
        r.histogram("report.test.hist").record(9);
        let json = r.snapshot().with_extra("check.x", 1.5).to_json();
        let s = BenchSnapshot::parse(&json).unwrap();
        #[cfg(not(feature = "obs-off"))]
        {
            assert_eq!(s.get("counters.report.test.counter"), Some(5.0));
            assert_eq!(s.get("histograms.report.test.hist.count"), Some(1.0));
        }
        assert_eq!(s.get("extra.check.x"), Some(1.5));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(BenchSnapshot::parse("").is_err());
        assert!(BenchSnapshot::parse("{").is_err());
        assert!(BenchSnapshot::parse(r#"{"a": }"#).is_err());
        assert!(BenchSnapshot::parse(r#"{"a": 1} trailing"#).is_err());
    }

    #[test]
    fn report_folds_files_and_computes_speedup() {
        let dir = std::env::temp_dir().join("bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("BENCH_simd.json");
        std::fs::write(&p, SAMPLE).unwrap();
        let missing = dir.join("BENCH_absent.json");
        let report = bench_report(&[p, missing]).unwrap();
        assert!(report.contains("4.00x"), "{report}");
        assert!(report.contains("skipped"), "{report}");
        assert!(report.contains("kernel.simd_waves = 900"), "{report}");
    }

    #[test]
    fn malformed_snapshot_is_a_hard_error_naming_the_file() {
        let dir = std::env::temp_dir().join("bench_report_malformed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("BENCH_simd.json");
        std::fs::write(&good, SAMPLE).unwrap();
        let bad = dir.join("BENCH_bad.json");
        std::fs::write(&bad, "{oops").unwrap();
        // A present-but-unparseable snapshot must fail the whole
        // report (not silently vanish from it), naming the file.
        let err = bench_report(&[good.clone(), bad.clone()]).unwrap_err();
        assert!(err.contains("BENCH_bad.json"), "{err}");
        assert!(err.contains("malformed"), "{err}");
        // Truly missing files are still just skipped.
        std::fs::remove_file(&bad).unwrap();
        let report = bench_report(&[good, bad]).unwrap();
        assert!(report.contains("skipped"), "{report}");
    }

    #[test]
    fn report_folds_hier_flat_pairs_with_speedup() {
        let dir = std::env::temp_dir().join("bench_report_hier_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("BENCH_hier.json");
        std::fs::write(
            &p,
            r#"{
  "counters": {
    "hier.regions_pruned": 420,
    "hier.rows_skipped": 15000000
  },
  "extra": {
    "hier.rows_per_sec.flat.simd.full.sel10ppm": 2.0e8,
    "hier.rows_per_sec.hier.simd.full.sel10ppm": 3.0e9,
    "hier.rows_per_sec.flat.simd.full.sel800ppm": 2.0e8,
    "hier.rows_per_sec.hier.simd.full.sel800ppm": 4.0e8
  }
}
"#,
        )
        .unwrap();
        let report = bench_report(&[p]).unwrap();
        assert!(report.contains("## Hierarchical pruning"), "{report}");
        // 3e9 / 2e8 = 15x on the sparse point.
        assert!(report.contains("15.00x"), "{report}");
        assert!(report.contains("2.00x"), "{report}");
        // Selectivity points sort numerically, sparsest first.
        let sparse = report.find("sel10ppm").expect("sparse row");
        let dense = report.find("sel800ppm").expect("dense row");
        assert!(sparse < dense, "{report}");
        assert!(report.contains("hier.regions_pruned = 420"), "{report}");
    }

    #[test]
    fn report_folds_hybrid_three_mode_points() {
        let dir = std::env::temp_dir().join("bench_report_hybrid_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("BENCH_hybrid.json");
        std::fs::write(
            &p,
            r#"{
  "counters": {
    "planner.split.exact": 13,
    "planner.split.ab": 3
  },
  "extra": {
    "hybrid.rows_per_sec.flat.batched.full.sel1000ppm": 2.0e7,
    "hybrid.rows_per_sec.hier.batched.full.sel1000ppm": 2.5e7,
    "hybrid.rows_per_sec.hybrid.batched.full.sel1000ppm": 6.0e9,
    "hybrid.fp_rows_eliminated.full.sel1000ppm": 2538,
    "hybrid.backed_bins": 13,
    "hybrid.container_bytes": 62458
  }
}
"#,
        )
        .unwrap();
        let report = bench_report(&[p]).unwrap();
        assert!(report.contains("## Hybrid tier"), "{report}");
        // 6e9 / 2e7 = 300x speedup hybrid vs flat.
        assert!(report.contains("300.00x"), "{report}");
        // The per-point eliminated count rides the kernel row.
        assert!(report.contains("2538"), "{report}");
        // Split and shape land in the environment section.
        assert!(report.contains("planner.split.exact = 13"), "{report}");
        assert!(report.contains("hybrid.backed_bins = 13"), "{report}");
    }

    #[test]
    fn report_folds_net_socket_points() {
        let dir = std::env::temp_dir().join("bench_report_net_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("BENCH_net.json");
        std::fs::write(
            &p,
            r#"{
  "counters": {},
  "extra": {
    "net.total_rps.conns4": 9000.0,
    "net.rps.rect.conns1": 2500.0,
    "net.rps.rect.conns4": 9000.0,
    "net.latency_us.rect.conns1.p50": 300.0,
    "net.latency_us.rect.conns1.p95": 700.0,
    "net.latency_us.rect.conns1.p99": 1500.0,
    "net.latency_us.rect.conns1.p999": 4000.0,
    "net.latency_us.rect.conns4.p50": 350.0,
    "net.latency_us.rect.conns4.p95": 800.0,
    "net.latency_us.rect.conns4.p99": 1900.0,
    "net.latency_us.rect.conns4.p999": 5200.0,
    "net.rps.batch.conns4": 1100.0,
    "net.latency_us.batch.conns4.p99": 2600.0,
    "net.errors.rect.conns4": 17.0,
    "net.shed.rect.conns4": 12.0,
    "net.transport_errors.conns4": 1.0,
    "net.reconnects.conns4": 3.0
  }
}
"#,
        )
        .unwrap();
        let report = bench_report(&[p]).unwrap();
        assert!(report.contains("## Socket latency"), "{report}");
        // Rps, error/shed counts, and all four quantiles of one point
        // share a line; conns points sort numerically under each kind.
        let rect4 = report
            .lines()
            .find(|l| l.contains("rect") && l.contains("9000"))
            .unwrap_or_else(|| panic!("no rect/conns4 row in {report}"));
        for v in ["350", "800", "1900", "5200", "17", "12"] {
            assert!(rect4.contains(v), "{rect4}");
        }
        // Connection-level reliability lands in the environment block.
        assert!(
            report.contains("net.transport_errors.conns4 = 1"),
            "{report}"
        );
        assert!(report.contains("net.reconnects.conns4 = 3"), "{report}");
        assert!(report.contains("batch"), "{report}");
        let one = report.find(" 2500 ").expect("conns1 row");
        let four = report.find(" 9000 ").expect("conns4 row");
        assert!(one < four, "conns points out of order:\n{report}");
    }

    #[test]
    fn report_folds_service_latency_percentiles() {
        let dir = std::env::temp_dir().join("bench_report_lat_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("BENCH_svc.json");
        std::fs::write(
            &p,
            r#"{
  "counters": {},
  "extra": {
    "svc.rps.threads8": 5000.0,
    "svc.latency_us.rect.threads1.p50": 120.0,
    "svc.latency_us.rect.threads1.p95": 340.0,
    "svc.latency_us.rect.threads1.p99": 900.0,
    "svc.latency_us.rect.threads8.p50": 150.0,
    "svc.latency_us.rect.threads8.p95": 410.0,
    "svc.latency_us.rect.threads8.p99": 1200.0,
    "svc.latency_us.batch.threads8.p50": 800.0,
    "svc.latency_us.batch.threads8.p95": 1500.0,
    "svc.latency_us.batch.threads8.p99": 2100.0
  }
}
"#,
        )
        .unwrap();
        let report = bench_report(&[p]).unwrap();
        assert!(report.contains("## Service latency"), "{report}");
        // All three quantiles of one row land on one line, kinds are
        // separate rows, and thread points sort numerically.
        let rect8 = report
            .lines()
            .find(|l| l.contains("rect") && l.contains("  8  "))
            .unwrap_or_else(|| panic!("no rect/8 row in {report}"));
        for v in ["150", "410", "1200"] {
            assert!(rect8.contains(v), "{rect8}");
        }
        assert!(report.contains("batch"), "{report}");
        let order: Vec<usize> = ["threads  ", " 1 ", " 8 "]
            .iter()
            .filter_map(|s| report.find(*s))
            .collect();
        assert_eq!(order.len(), 3, "{report}");
    }
}
