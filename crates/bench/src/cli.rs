//! Minimal argument parsing shared by the repro binaries.
//!
//! No external CLI crate is sanctioned offline, so this is a tiny
//! `--flag value` parser. Common flags:
//!
//! * `--scale <f64>` — fraction of the paper's row counts (default
//!   0.02, large enough for stable precision statistics, small enough
//!   for seconds-scale runs);
//! * `--full` — paper-scale data (`--scale 1`);
//! * `--seed <u64>` — RNG seed (default 42);
//! * `--queries <usize>` — queries per measurement point (default 100,
//!   the paper's `q`).

/// Parsed common options.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// Row-count scale relative to the paper's data sets.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Queries per measurement point.
    pub queries: usize,
    /// Value of `--table` / `--figure` if present (e.g. "3", "11a",
    /// "all").
    pub selector: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 0.02,
            seed: 42,
            queries: 100,
            selector: None,
        }
    }
}

/// Parses `std::env::args`-style iterators.
///
/// Unknown flags abort with a usage message (better than silently
/// ignoring a typoed `--scale`).
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Options {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                opts.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a number"));
            }
            "--full" => opts.scale = 1.0,
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--queries" => {
                opts.queries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--queries needs an integer"));
            }
            "--table" | "--figure" => {
                opts.selector = Some(it.next().unwrap_or_else(|| usage("selector missing")));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    assert!(
        opts.scale > 0.0 && opts.scale <= 1.0,
        "scale must be in (0, 1]"
    );
    opts
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: repro_* [--scale F] [--full] [--seed N] [--queries N] \
         [--table T | --figure F]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// Parses the real process arguments (skipping `argv[0]`).
pub fn from_env() -> Options {
    parse(std::env::args().skip(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Options {
        parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = p(&[]);
        assert_eq!(o.scale, 0.02);
        assert_eq!(o.seed, 42);
        assert_eq!(o.queries, 100);
        assert_eq!(o.selector, None);
    }

    #[test]
    fn parses_all_flags() {
        let o = p(&[
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--queries",
            "10",
            "--figure",
            "11a",
        ]);
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.seed, 7);
        assert_eq!(o.queries, 10);
        assert_eq!(o.selector.as_deref(), Some("11a"));
    }

    #[test]
    fn full_sets_scale_one() {
        assert_eq!(p(&["--full"]).scale, 1.0);
    }

    #[test]
    fn table_selector() {
        assert_eq!(p(&["--table", "4"]).selector.as_deref(), Some("4"));
    }
}
