//! Shared experiment harness for the repro binaries and Criterion
//! benches.
//!
//! Everything here operationalizes the paper's experimental framework
//! (§5): prepare the three data sets, build the WAH baseline and AB
//! indexes, generate sampled queries, and measure precision and
//! execution time. The per-experiment mapping lives in DESIGN.md; the
//! measured-vs-published record lives in EXPERIMENTS.md.

use ab::{AbConfig, AbIndex, Level, PrecisionStats};
use bitmap::{BitmapIndex, Encoding, RectQuery};
use datagen::{Dataset, QueryGenParams};
use std::time::Instant;
use wah::WahIndex;

pub mod cli;
pub mod report;

pub use report::{bench_report, BenchSnapshot};

/// The α at which each data set's AB is "smaller than or comparable to
/// WAH" (paper §6.1): uniform 16 (per column), HEP 8, Landsat 8.
pub fn paper_alpha(name: &str) -> u64 {
    match name {
        "uniform" => 16,
        "landsat" | "hep" => 8,
        _ => 8,
    }
}

/// The level used in each data set's headline experiments, chosen so
/// the AB stays "less than or comparable to" the WAH size (§6.1):
/// per-column for uniform (half of WAH), per-attribute for Landsat
/// (31.4 MB vs WAH's 30.1 MB), per-dataset for HEP ("one third more").
pub fn paper_level(name: &str) -> Level {
    match name {
        "uniform" => Level::PerColumn,
        "landsat" => Level::PerAttribute,
        _ => Level::PerDataset,
    }
}

/// A fully prepared experimental subject: data + both index families.
pub struct Bundle {
    /// The generated data set.
    pub ds: Dataset,
    /// Exact (uncompressed) equality index — ground truth and pruning.
    pub exact: BitmapIndex,
    /// WAH-compressed baseline index.
    pub wah: WahIndex,
}

impl Bundle {
    /// Generates and indexes one data set.
    pub fn new(ds: Dataset) -> Self {
        let exact = BitmapIndex::build(&ds.binned, Encoding::Equality);
        let wah = WahIndex::build(&ds.binned);
        Bundle { ds, exact, wah }
    }

    /// All three paper data sets at `scale`.
    pub fn paper_bundles(scale: f64, seed: u64) -> Vec<Bundle> {
        datagen::paper_datasets(scale, seed)
            .into_iter()
            .map(Bundle::new)
            .collect()
    }

    /// Builds an AB index over this bundle's data.
    pub fn ab(&self, config: &AbConfig) -> AbIndex {
        AbIndex::build(&self.ds.binned, config)
    }

    /// The paper's default AB for this data set.
    pub fn paper_ab(&self) -> AbIndex {
        self.ab(&AbConfig::new(paper_level(&self.ds.name)).with_alpha(paper_alpha(&self.ds.name)))
    }

    /// Sampled queries targeting `rows` rows (§5.4 workhorse shape).
    pub fn queries(&self, rows: usize, seed: u64) -> Vec<RectQuery> {
        let params = QueryGenParams::paper_default(&self.ds.binned, rows.min(self.ds.rows()), seed);
        datagen::generate(&self.ds.binned, &params)
    }
}

/// Mean precision of the AB over a query batch, with recall checked to
/// be exactly 1 (the no-false-negative guarantee).
pub fn mean_precision(ab: &AbIndex, exact: &BitmapIndex, queries: &[RectQuery]) -> f64 {
    assert!(!queries.is_empty());
    let mut total = 0.0;
    for q in queries {
        let approx = ab.execute_rect(q);
        let want = exact.evaluate_rows(q);
        let stats = PrecisionStats::compare(&approx, &want);
        assert_eq!(
            stats.false_negatives, 0,
            "AB produced a false negative — invariant broken"
        );
        total += stats.precision();
    }
    total / queries.len() as f64
}

/// Mean tuples returned per query by the exact index and by the AB —
/// the "WAH returned X tuples, AB returned Y" numbers of §6.2.
pub fn mean_tuples(ab: &AbIndex, exact: &BitmapIndex, queries: &[RectQuery]) -> (f64, f64) {
    let mut ab_total = 0usize;
    let mut exact_total = 0usize;
    for q in queries {
        ab_total += ab.execute_rect(q).len();
        exact_total += exact.evaluate_rows(q).len();
    }
    (
        exact_total as f64 / queries.len() as f64,
        ab_total as f64 / queries.len() as f64,
    )
}

/// Wall-clock milliseconds to run `f` once.
pub fn time_ms<F: FnMut()>(mut f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

/// Mean per-query AB execution time (ms) over a batch.
pub fn ab_query_time_ms(ab: &AbIndex, queries: &[RectQuery]) -> f64 {
    let start = Instant::now();
    for q in queries {
        std::hint::black_box(ab.execute_rect(q));
    }
    start.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
}

/// Mean per-query WAH execution time (ms). Matches the paper's
/// measurement: "only the time it takes to execute the query without
/// any row filtering" — the OR/AND plan over full columns — which is
/// why WAH time is flat in the number of rows queried.
pub fn wah_query_time_ms(wah: &WahIndex, queries: &[RectQuery]) -> f64 {
    let start = Instant::now();
    for q in queries {
        // Full-column plan: drop the row mask, as the paper measures.
        let full = RectQuery::new(q.ranges.clone(), 0, wah.num_rows() - 1);
        std::hint::black_box(wah.evaluate(&full));
    }
    start.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
}

/// Writes a registry snapshot as `BENCH_<name>.json` in the current
/// directory and returns the path. The JSON layout is
/// [`obs::Snapshot::to_json`]; see the README's Observability section
/// for how to read it.
pub fn write_bench_snapshot(
    name: &str,
    snap: &obs::Snapshot,
) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::PathBuf::from(format!("BENCH_{name}.json"));
    std::fs::write(&path, snap.to_json())?;
    Ok(path)
}

/// The five per-query counters that must equal the summed
/// [`ab::QueryStats`] of the instrumented query loop.
const AB_QUERY_COUNTERS: [&str; 5] = [
    "ab.query.executed",
    "ab.query.cells_probed",
    "ab.query.bits_read",
    "ab.query.rows_matched",
    "ab.query.short_circuit_hits",
];

/// Runs an end-to-end instrumented workload over the three paper data
/// sets — AB builds, WAH compressed-domain ops, planner calibration
/// and planning, AB queries with exact pruning — and returns a
/// registry snapshot covering exactly that workload.
///
/// The snapshot's `extra` map carries cross-check values: after
/// calibration (whose internal timing runs also execute AB queries)
/// the `ab.query.*` counters are zeroed, so in the returned snapshot
/// `ab.query.cells_probed` (and friends) equal the summed per-query
/// [`ab::QueryStats`] stored under `check.*` exactly.
pub fn metrics_workload(scale: f64, seed: u64) -> obs::Snapshot {
    obs::global().reset();
    let bundles = Bundle::paper_bundles(scale, seed);

    // Phase 1 — builds, WAH ops, planner. These may run AB queries
    // internally (calibration timing), so they come first.
    let prepared: Vec<(Bundle, AbIndex, Vec<RectQuery>)> = bundles
        .into_iter()
        .map(|b| {
            let ab_index = b.paper_ab();
            let queries = b.queries((b.ds.rows() / 100).max(10), seed ^ 0x51);
            for q in queries.iter().take(10) {
                std::hint::black_box(b.wah.evaluate(q));
            }
            {
                let wah_like = ab::planner::wah_like::WahLike::new(|q: &RectQuery| {
                    std::hint::black_box(b.wah.evaluate(q));
                });
                let samples = &queries[..queries.len().min(8)];
                let model = ab::calibrate(&ab_index, &wah_like, samples);
                for q in &queries {
                    let _ = ab::plan(&model, q);
                }
            }
            (b, ab_index, queries)
        })
        .collect();

    // Phase 2 — the accounted query loop. Zero the per-query counters
    // so the snapshot totals equal the summed QueryStats exactly.
    for name in AB_QUERY_COUNTERS {
        obs::global().counter(name).reset();
    }
    let mut total = ab::QueryStats::default();
    let mut queries_run = 0u64;
    for (b, ab_index, queries) in &prepared {
        for q in queries {
            let (rows, stats) = ab_index.execute_rect_with_stats(q);
            total.cells_probed += stats.cells_probed;
            total.bits_read += stats.bits_read;
            total.rows_matched += stats.rows_matched;
            queries_run += 1;
            // Exact second step → ab.query.false_positives.
            std::hint::black_box(ab::prune_false_positives(&b.exact, q, &rows));
        }
    }

    obs::global()
        .snapshot()
        .with_extra("check.queries", queries_run as f64)
        .with_extra("check.cells_probed", total.cells_probed as f64)
        .with_extra("check.bits_read", total.bits_read as f64)
        .with_extra("check.rows_matched", total.rows_matched as f64)
}

/// Formats a row-aligned ASCII table (plain `println!` output so the
/// repro binaries' stdout diffs cleanly against EXPERIMENTS.md).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Byte count with thousands separators (paper tables print raw byte
/// counts).
pub fn fmt_bytes(b: u64) -> String {
    let s = b.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_groups_digits() {
        assert_eq!(fmt_bytes(0), "0");
        assert_eq!(fmt_bytes(999), "999");
        assert_eq!(fmt_bytes(1000), "1,000");
        assert_eq!(fmt_bytes(16_527_900), "16,527,900");
    }

    #[test]
    fn bundle_end_to_end_small() {
        let ds = datagen::small_uniform(2000, 2, 10, 7);
        let b = Bundle::new(ds);
        let ab = b.ab(&AbConfig::new(Level::PerAttribute).with_alpha(8));
        let queries = b.queries(200, 3);
        let p = mean_precision(&ab, &b.exact, &queries);
        assert!(p > 0.5 && p <= 1.0, "precision {p}");
        let (exact_t, ab_t) = mean_tuples(&ab, &b.exact, &queries);
        assert!(ab_t >= exact_t, "AB returns a superset on average");
    }

    #[test]
    fn wah_and_exact_agree() {
        let ds = datagen::small_uniform(3000, 2, 8, 9);
        let b = Bundle::new(ds);
        for q in b.queries(300, 4).iter().take(20) {
            assert_eq!(b.wah.evaluate_rows(q), b.exact.evaluate_rows(q));
        }
    }

    #[test]
    fn paper_parameters() {
        assert_eq!(paper_alpha("uniform"), 16);
        assert_eq!(paper_alpha("hep"), 8);
        assert_eq!(paper_level("uniform"), Level::PerColumn);
        assert_eq!(paper_level("landsat"), Level::PerAttribute);
        assert_eq!(paper_level("hep"), Level::PerDataset);
    }

    #[test]
    fn timing_helpers_return_positive() {
        let ds = datagen::small_uniform(1000, 2, 8, 1);
        let b = Bundle::new(ds);
        let ab = b.paper_ab();
        let queries = b.queries(100, 5);
        assert!(ab_query_time_ms(&ab, &queries[..5]) >= 0.0);
        assert!(wah_query_time_ms(&b.wah, &queries[..5]) >= 0.0);
    }
}
