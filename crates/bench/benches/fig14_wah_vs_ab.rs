//! Figure 14: execution time, WAH vs AB, varying the number of rows
//! queried.
//!
//! The paper's headline: WAH pays a flat full-column cost while AB is
//! linear in the rows actually queried, so AB wins by 1–3 orders of
//! magnitude on small row subsets, with the crossover near 15% of the
//! rows. Row fractions {0.1%, 1%, 10%, 25%} per data set; `wah` is one
//! flat series per data set.

use bench::Bundle;
use bitmap::RectQuery;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_wah_vs_ab(c: &mut Criterion) {
    let bundles = Bundle::paper_bundles(0.01, 42);
    for bundle in &bundles {
        let n = bundle.ds.rows();
        let ab = bundle.paper_ab();
        let mut group = c.benchmark_group(format!("fig14/{}", bundle.ds.name).as_str());
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600));

        // WAH: flat cost, independent of rows requested.
        let queries = bundle.queries(n / 100, 3);
        group.bench_function("wah(any rows)", |b| {
            b.iter(|| {
                for q in queries.iter().take(10) {
                    let full = RectQuery::new(q.ranges.clone(), 0, n - 1);
                    std::hint::black_box(bundle.wah.evaluate(&full));
                }
            })
        });

        for permille in [1usize, 10, 100, 250] {
            let rows = (n * permille / 1000).max(1);
            let queries = bundle.queries(rows, 3);
            group.bench_function(format!("ab(rows={rows})").as_str(), |b| {
                b.iter(|| {
                    for q in queries.iter().take(10) {
                        std::hint::black_box(ab.execute_rect(q));
                    }
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_wah_vs_ab);
criterion_main!(benches);
