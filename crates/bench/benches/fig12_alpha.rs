//! Figure 12: AB query execution time as a function of α.
//!
//! The paper: "As α increases the execution time decreases because the
//! false positive rate gets smaller" (fewer rows survive per probe and
//! short-circuits fire earlier). One Criterion group per data set,
//! one benchmark per α ∈ {2, 4, 8, 16}.

use ab::AbConfig;
use bench::{paper_level, Bundle};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_alpha(c: &mut Criterion) {
    let bundles = Bundle::paper_bundles(0.01, 42);
    for bundle in &bundles {
        let queries = bundle.queries(bundle.ds.rows() / 10, 7);
        let mut group = c.benchmark_group(format!("fig12/{}", bundle.ds.name).as_str());
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600));
        for alpha in [2u64, 4, 8, 16] {
            let ab = bundle.ab(&AbConfig::new(paper_level(&bundle.ds.name)).with_alpha(alpha));
            group.bench_function(format!("alpha={alpha}").as_str(), |b| {
                b.iter(|| {
                    for q in &queries {
                        std::hint::black_box(ab.execute_rect(q));
                    }
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_alpha);
criterion_main!(benches);
