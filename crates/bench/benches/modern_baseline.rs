//! AB vs WAH vs Roaring — placing the paper's 2006 contribution
//! against the structure the field adopted afterwards.
//!
//! Three query strategies over the same row-subset workload:
//!
//! * `ab` — approximate, hash probes per cell (the paper's O(c));
//! * `wah_plan` — exact, flat full-column cost (the paper's baseline);
//! * `roaring_plan` — exact full-column plan over Roaring containers;
//! * `roaring_direct` — exact per-row probing via Roaring's O(log)
//!   direct access, the fair modern counterpart to the AB's claim.

use bench::Bundle;
use bitmap::RectQuery;
use criterion::{criterion_group, criterion_main, Criterion};
use roar::RoaringIndex;
use std::time::Duration;

fn bench_modern(c: &mut Criterion) {
    let bundle = Bundle::new(datagen::uniform_dataset(0.2, 42)); // 20k rows
    let n = bundle.ds.rows();
    let ab = bundle.paper_ab();
    let roaring = RoaringIndex::build(&bundle.ds.binned);
    eprintln!(
        "modern_baseline sizes: AB {} B, WAH {} B, Roaring {} B, verbatim {} B",
        ab.size_bytes(),
        bundle.wah.size_bytes(),
        roaring.size_bytes(),
        bundle.exact.size_bytes(),
    );

    for rows in [n / 1000, n / 100, n / 10] {
        let queries = bundle.queries(rows, 7);
        let mut group = c.benchmark_group(format!("modern/rows={rows}").as_str());
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600));

        group.bench_function("ab", |b| {
            b.iter(|| {
                for q in queries.iter().take(20) {
                    std::hint::black_box(ab.execute_rect(q));
                }
            })
        });
        group.bench_function("wah_plan", |b| {
            b.iter(|| {
                for q in queries.iter().take(20) {
                    let full = RectQuery::new(q.ranges.clone(), 0, n - 1);
                    std::hint::black_box(bundle.wah.evaluate(&full));
                }
            })
        });
        group.bench_function("roaring_plan", |b| {
            b.iter(|| {
                for q in queries.iter().take(20) {
                    let full = RectQuery::new(q.ranges.clone(), 0, n - 1);
                    std::hint::black_box(roaring.evaluate(&full));
                }
            })
        });
        group.bench_function("roaring_direct", |b| {
            b.iter(|| {
                for q in queries.iter().take(20) {
                    std::hint::black_box(roaring.evaluate_direct(q));
                }
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_modern);
criterion_main!(benches);
