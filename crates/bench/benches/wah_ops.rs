//! WAH vs BBC logical-operation speed and the get-bit scan cost.
//!
//! Backs two background claims: WAH bit operations are faster than
//! BBC (2–20×, §2.2.1), and locating a single bit in a run-length
//! stream is a scan — the direct-access deficiency the AB removes.

use bitmap::BitVec;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wah::{BbcBitmap, WahBitmap};

fn clustered(len: usize, runs: usize, seed: u64) -> BitVec {
    // Alternating runs of pseudo-random lengths: the clustered bit
    // patterns run-length codes are built for.
    let mut bv = BitVec::zeros(len);
    let mut pos = 0usize;
    let mut state = seed;
    let mut value = false;
    while pos < len {
        state = hashkit::splitmix64(state);
        let run = (state % (2 * len as u64 / runs as u64 + 1)) as usize + 1;
        if value {
            for i in pos..(pos + run).min(len) {
                bv.set(i);
            }
        }
        pos += run;
        value = !value;
    }
    bv
}

fn bench_ops(c: &mut Criterion) {
    let len = 1 << 20;
    let a = clustered(len, 2000, 1);
    let b = clustered(len, 2000, 2);
    let (wa, wb) = (WahBitmap::from_bitvec(&a), WahBitmap::from_bitvec(&b));
    let (ba, bb) = (BbcBitmap::from_bitvec(&a), BbcBitmap::from_bitvec(&b));

    let mut group = c.benchmark_group("wah_ops");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    group.bench_function("wah_and", |bch| {
        bch.iter(|| std::hint::black_box(wa.and(&wb)))
    });
    group.bench_function("wah_or", |bch| {
        bch.iter(|| std::hint::black_box(wa.or(&wb)))
    });
    group.bench_function("bbc_and", |bch| {
        bch.iter(|| std::hint::black_box(ba.and(&bb)))
    });
    group.bench_function("verbatim_and", |bch| {
        bch.iter(|| std::hint::black_box(a.and(&b)))
    });
    group.bench_function("wah_get_bit_scan", |bch| {
        let mut i = 0usize;
        bch.iter(|| {
            i = (i + 777_777) % len;
            std::hint::black_box(wa.get(i))
        })
    });
    group.bench_function("verbatim_get_bit", |bch| {
        let mut i = 0usize;
        bch.iter(|| {
            i = (i + 777_777) % len;
            std::hint::black_box(a.get(i))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
