//! Probe-kernel microbenchmarks (DESIGN.md §13).
//!
//! Three engines over the same workload:
//!
//! * `scalar`  — the row-at-a-time Figure 7 reference loop;
//! * `batched` — the hoisted, prefetch-pipelined kernel (64-row
//!   batches, breadth-first probe resolution);
//! * `blocked_word_parallel` — `BlockedAb` cell probes, where all k
//!   in-block bits collapse into two u64 mask tests.
//!
//! The headline out-of-LLC numbers come from `repro_kernel` /
//! `repro_simd` (BENCH_kernel.json / BENCH_simd.json; the `simd` rows
//! here need `--features simd` to differ from `batched`); this bench
//! tracks relative regressions at
//! CI-friendly sizes. Run `cargo bench -p bench --bench kernel`
//! (optionally with `--features prefetch`).

use ab::{AbConfig, BlockedAb, KernelKind, Level};
use bench::Bundle;
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::small_uniform;
use hashkit::{CellMapper, HashFamily};
use std::time::Duration;

fn bench_rect_kernels(c: &mut Criterion) {
    let bundle = Bundle::new(small_uniform(50_000, 3, 16, 42));
    let queries = bundle.queries(2000, 5);
    for k in [4usize, 8, 16] {
        let ab = bundle.ab(&AbConfig::new(Level::PerAttribute)
            .with_alpha(8)
            .with_k(k)
            .with_family(HashFamily::DoubleHashing));
        let group_name = format!("kernel/rect_k{k}");
        let mut group = c.benchmark_group(group_name.as_str());
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(800));
        for (name, kernel) in [
            ("scalar", KernelKind::Scalar),
            ("batched", KernelKind::Batched),
            ("simd", KernelKind::Simd),
        ] {
            group.bench_function(name, |b| {
                b.iter(|| {
                    for q in queries.iter().take(20) {
                        std::hint::black_box(ab.try_execute_rect_with_kernel(q, kernel).unwrap());
                    }
                })
            });
        }
        group.finish();
    }
}

fn bench_cell_kernels(c: &mut Criterion) {
    use ab::Cell;
    let bundle = Bundle::new(small_uniform(50_000, 2, 16, 7));
    let ab = bundle.ab(&AbConfig::new(Level::PerAttribute)
        .with_alpha(8)
        .with_family(HashFamily::DoubleHashing));
    let cells: Vec<Cell> = (0..10_000)
        .map(|i| Cell::new((i * 13) % 50_000, i % 2, (i as u32 * 5) % 16))
        .collect();
    let mut group = c.benchmark_group("kernel/cells");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for (name, kernel) in [
        ("scalar", KernelKind::Scalar),
        ("batched", KernelKind::Batched),
        ("simd", KernelKind::Simd),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(ab.retrieve_cells_with_kernel(&cells, kernel)))
        });
    }
    group.finish();
}

fn bench_blocked_word_parallel(c: &mut Criterion) {
    // BlockedAb contains(): k bits resolved with ≤2 word loads via the
    // two-mask layout, vs the pre-§13 per-bit loop shape at k > 128
    // (exercised here through the same API by exceeding the cap).
    let s = 1_000_000u64;
    let n = ab::ab_bits(s, 8);
    let mapper = CellMapper::RowOnly;
    let mut word_parallel = BlockedAb::new(n, 8, mapper);
    let mut scalar_path = BlockedAb::new(n, 129, mapper); // falls back
    for r in 0..s {
        word_parallel.insert(r, 0);
        scalar_path.insert(r, 0);
    }
    let mut group = c.benchmark_group("kernel/blocked");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("word_parallel_k8", |b| {
        let mut r = 0u64;
        b.iter(|| {
            r = r.wrapping_add(0x9E37_79B9);
            std::hint::black_box(word_parallel.contains(r % (2 * s), 0))
        })
    });
    group.bench_function("scalar_fallback_k129", |b| {
        let mut r = 0u64;
        b.iter(|| {
            r = r.wrapping_add(0x9E37_79B9);
            std::hint::black_box(scalar_path.contains(r % (2 * s), 0))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rect_kernels,
    bench_cell_kernels,
    bench_blocked_word_parallel
);
criterion_main!(benches);
