//! Index construction cost: exact bitmaps vs WAH compression vs AB
//! insertion at each level.
//!
//! Not a paper figure, but a number any adopter asks for — and it
//! shows AB construction is a single hash-and-set pass over the set
//! bits (Figure 3), independent of cardinality.

use ab::{AbConfig, Level};
use bitmap::{BitmapIndex, Encoding};
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::small_uniform;
use std::time::Duration;
use wah::WahIndex;

fn bench_build(c: &mut Criterion) {
    let ds = small_uniform(20_000, 4, 25, 42);
    let mut group = c.benchmark_group("build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    group.bench_function("exact_bitmap_index", |b| {
        b.iter(|| std::hint::black_box(BitmapIndex::build(&ds.binned, Encoding::Equality)))
    });
    group.bench_function("wah_index", |b| {
        b.iter(|| std::hint::black_box(WahIndex::build(&ds.binned)))
    });
    for level in [Level::PerDataset, Level::PerAttribute, Level::PerColumn] {
        let cfg = AbConfig::new(level).with_alpha(8);
        group.bench_function(format!("ab_{level}").as_str(), |b| {
            b.iter(|| std::hint::black_box(ab::AbIndex::build(&ds.binned, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
