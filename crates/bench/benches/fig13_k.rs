//! Figure 13: AB query execution time as a function of k.
//!
//! The paper: "As k increases the execution time increases linearly" —
//! each probe computes k hash functions.

use ab::AbConfig;
use bench::{paper_alpha, paper_level, Bundle};
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::small_uniform;
use std::time::Duration;

fn bench_k(c: &mut Criterion) {
    let bundle = Bundle::new(small_uniform(5_000, 2, 50, 42));
    let queries = bundle.queries(500, 7);
    let mut group = c.benchmark_group("fig13/uniform");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for k in [1usize, 2, 4, 6, 8, 10] {
        let cfg = AbConfig::new(paper_level("uniform"))
            .with_alpha(paper_alpha("uniform"))
            .with_k(k);
        let ab = bundle.ab(&cfg);
        group.bench_function(format!("k={k}").as_str(), |b| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(ab.execute_rect(q));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_k);
criterion_main!(benches);
