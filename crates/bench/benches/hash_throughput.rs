//! Hash-function throughput — the §6.4 cost story.
//!
//! "As the main purpose of SHA-1 is to have a secure hash function,
//! the computation cost is very expensive and thus SHA-1 is slower
//! than the other hash functions used in this work."

use criterion::{criterion_group, criterion_main, Criterion};
use hashkit::{CellMapper, HashFamily, HashKind};
use std::time::Duration;

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_throughput");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let n = 1u64 << 20;
    let k = 6;
    let mapper = CellMapper::for_columns(100);

    let families: [(&str, HashFamily); 4] = [
        ("independent(partow)", HashFamily::default_independent()),
        ("sha1_split", HashFamily::Sha1Split),
        ("double_hashing", HashFamily::DoubleHashing),
        (
            "single(bkdr)x6",
            HashFamily::Independent(vec![HashKind::Bkdr]),
        ),
    ];
    for (name, family) in &families {
        group.bench_function(name, |b| {
            let mut buf = Vec::with_capacity(k);
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                family.positions(x, x % 100, mapper, k, n, &mut buf);
                std::hint::black_box(&buf);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hashes);
criterion_main!(benches);
