//! Ablations of the design choices DESIGN.md calls out.
//!
//! * power-of-two reduction (`& (n−1)`) vs general modulo (`% n`) —
//!   why the paper rounds AB sizes up to powers of two;
//! * Figure 7's OR/AND short-circuit evaluation vs naive full-cell
//!   evaluation;
//! * hash family choice at equal (n, k): independent roster vs
//!   double hashing vs SHA-1 split;
//! * encoding level at equal α.

use ab::{AbConfig, Level};
use bench::Bundle;
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::small_uniform;
use hashkit::HashFamily;
use std::time::Duration;

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/reduction");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    let n_pow2: u64 = 1 << 20;
    let n_odd: u64 = (1 << 20) - 77;
    group.bench_function("mask_pow2", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = hashkit::splitmix64(x);
            std::hint::black_box(x & (n_pow2 - 1))
        })
    });
    group.bench_function("modulo_general", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = hashkit::splitmix64(x);
            std::hint::black_box(x % n_odd)
        })
    });
    group.finish();
}

fn bench_short_circuit(c: &mut Criterion) {
    let bundle = Bundle::new(small_uniform(10_000, 3, 20, 42));
    let ab = bundle.ab(&AbConfig::new(Level::PerAttribute).with_alpha(8));
    let queries = bundle.queries(1000, 5);
    let mut group = c.benchmark_group("ablation/query_eval");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    group.bench_function("fig7_short_circuit", |b| {
        b.iter(|| {
            for q in queries.iter().take(20) {
                std::hint::black_box(ab.execute_rect(q));
            }
        })
    });
    group.bench_function("naive_all_cells", |b| {
        b.iter(|| {
            for q in queries.iter().take(20) {
                let mut rows = Vec::new();
                for row in q.row_lo..=q.row_hi {
                    let mut and = true;
                    for r in &q.ranges {
                        let mut or = false;
                        for bin in r.lo..=r.hi {
                            // no break: every cell probed
                            or |= ab.test_cell(row, r.attribute, bin);
                        }
                        and &= or;
                    }
                    if and {
                        rows.push(row);
                    }
                }
                std::hint::black_box(rows);
            }
        })
    });
    group.finish();
}

fn bench_families(c: &mut Criterion) {
    let bundle = Bundle::new(small_uniform(10_000, 2, 20, 42));
    let queries = bundle.queries(1000, 5);
    let mut group = c.benchmark_group("ablation/family");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (name, family) in [
        ("independent", HashFamily::default_independent()),
        ("double_hashing", HashFamily::DoubleHashing),
        ("sha1_split", HashFamily::Sha1Split),
    ] {
        let cfg = AbConfig::new(Level::PerAttribute)
            .with_alpha(8)
            .with_family(family);
        let ab = bundle.ab(&cfg);
        group.bench_function(name, |b| {
            b.iter(|| {
                for q in queries.iter().take(20) {
                    std::hint::black_box(ab.execute_rect(q));
                }
            })
        });
    }
    group.finish();
}

fn bench_levels(c: &mut Criterion) {
    let bundle = Bundle::new(small_uniform(10_000, 2, 20, 42));
    let queries = bundle.queries(1000, 5);
    let mut group = c.benchmark_group("ablation/level");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for level in [Level::PerDataset, Level::PerAttribute, Level::PerColumn] {
        let ab = bundle.ab(&AbConfig::new(level).with_alpha(8));
        group.bench_function(format!("{level}").as_str(), |b| {
            b.iter(|| {
                for q in queries.iter().take(20) {
                    std::hint::black_box(ab.execute_rect(q));
                }
            })
        });
    }
    group.finish();
}

fn bench_blocked(c: &mut Criterion) {
    use ab::BlockedAb;
    use hashkit::CellMapper;
    // Standard AB vs cache-blocked AB at equal (n, k): raw cell-probe
    // throughput over a filter much larger than L2.
    let s = 2_000_000u64;
    let n = ab::ab_bits(s, 8);
    let k = 6;
    let mapper = CellMapper::RowOnly;
    let mut plain = ab::ApproximateBitmap::new(n, k, HashFamily::DoubleHashing, mapper);
    let mut blocked = BlockedAb::new(n, k, mapper);
    for r in 0..s {
        plain.insert(r, 0);
        blocked.insert(r, 0);
    }
    let mut group = c.benchmark_group("ablation/blocked");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("plain_probe", |b| {
        let mut r = 0u64;
        b.iter(|| {
            r = r.wrapping_add(0x9E37_79B9);
            std::hint::black_box(plain.contains(r % (2 * s), 0))
        })
    });
    group.bench_function("blocked_probe", |b| {
        let mut r = 0u64;
        b.iter(|| {
            r = r.wrapping_add(0x9E37_79B9);
            std::hint::black_box(blocked.contains(r % (2 * s), 0))
        })
    });
    group.finish();
}

fn bench_reorder(c: &mut Criterion) {
    use bitmap::{apply_permutation, gray_order, lexicographic_order};
    use wah::WahIndex;
    let ds = small_uniform(20_000, 3, 10, 42);
    let mut group = c.benchmark_group("ablation/reorder");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    group.bench_function("gray_order", |b| {
        b.iter(|| std::hint::black_box(gray_order(&ds.binned)))
    });
    group.bench_function("lexicographic_order", |b| {
        b.iter(|| std::hint::black_box(lexicographic_order(&ds.binned)))
    });
    // Compression effect (reported once; Criterion measures the time,
    // the sizes go to stderr for EXPERIMENTS.md).
    let base = WahIndex::build(&ds.binned).size_bytes();
    let gray =
        WahIndex::build(&apply_permutation(&ds.binned, &gray_order(&ds.binned))).size_bytes();
    eprintln!("reorder ablation: WAH {base} bytes unordered -> {gray} bytes gray-ordered");
    group.finish();
}

fn bench_parallel_build(c: &mut Criterion) {
    use ab::AbIndex;
    let ds = small_uniform(50_000, 8, 20, 42);
    let cfg = AbConfig::new(Level::PerAttribute).with_alpha(8);
    let mut group = c.benchmark_group("ablation/parallel_build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("threads={threads}").as_str(), |b| {
            b.iter(|| std::hint::black_box(AbIndex::build_parallel(&ds.binned, &cfg, threads)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reduction,
    bench_short_circuit,
    bench_families,
    bench_levels,
    bench_blocked,
    bench_reorder,
    bench_parallel_build
);
criterion_main!(benches);
