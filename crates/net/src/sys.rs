//! Minimal OS readiness layer: `epoll` on Linux, `poll(2)` everywhere
//! else — both via hand-rolled `extern "C"` declarations against the
//! platform libc that `std` already links, so the crate stays
//! zero-dependency.
//!
//! The surface is deliberately tiny: a [`Poller`] registers file
//! descriptors under integer tokens with read/write interest and
//! reports [`Event`]s, level-triggered on both backends so the event
//! loop never has to drain a socket to exhaustion in one pass.
//! `EINTR` is normalised to an empty wakeup (the serve loop installs
//! signal handlers, so interrupted waits are routine, not errors).

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_void};
use std::time::Duration;

/// Readiness interest / report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen registration token.
    pub token: u64,
    /// Readable (or peer-closed, which reads as EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// What to watch a registered descriptor for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readable.
    pub read: bool,
    /// Wake on writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
}

/// A level-triggered readiness poller over one of the two backends.
pub enum Poller {
    /// Linux `epoll(7)`.
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    /// Portable `poll(2)` (also selectable on Linux for coverage).
    Poll(portable::PollSet),
}

impl Poller {
    /// Creates the platform's preferred backend: epoll on Linux,
    /// poll(2) elsewhere. `force_poll` selects poll(2) everywhere —
    /// tests use it so both backends stay honest on Linux CI.
    pub fn new(force_poll: bool) -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if !force_poll {
                return Ok(Poller::Epoll(epoll::Epoll::new()?));
            }
        }
        let _ = force_poll;
        Ok(Poller::Poll(portable::PollSet::new()))
    }

    /// Backend name, for logs and tests.
    pub fn backend(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Poll(_) => "poll",
        }
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.register(fd, token, interest),
            Poller::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Changes the interest set of an already-watched `fd`.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.reregister(fd, token, interest),
            Poller::Poll(p) => p.reregister(fd, token, interest),
        }
    }

    /// Stops watching `fd`.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.deregister(fd),
            Poller::Poll(p) => p.deregister(fd),
        }
    }

    /// Blocks until at least one event, the timeout, or a signal
    /// (`EINTR` returns an empty batch). `None` waits forever.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(e) => e.wait(events, timeout),
            Poller::Poll(p) => p.wait(events, timeout),
        }
    }
}

/// Milliseconds for the C timeout argument: `-1` = infinite, rounded
/// *up* so a 100µs deadline doesn't busy-spin as 0ms.
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) if d.is_zero() => 0,
        Some(d) => {
            let ms = d.as_millis() + u128::from(d.as_nanos() % 1_000_000 != 0);
            ms.clamp(1, c_int::MAX as u128) as c_int
        }
    }
}

/// Linux epoll backend.
#[cfg(target_os = "linux")]
pub mod epoll {
    use super::*;

    // The kernel UAPI packs epoll_event on x86_64 only.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: c_int = 0x80000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut c_void) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut c_void, maxevents: c_int, timeout: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// An epoll instance plus its reusable event buffer.
    pub struct Epoll {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.read {
            m |= EPOLLIN;
        }
        if interest.write {
            m |= EPOLLOUT;
        }
        m
    }

    impl Epoll {
        pub(super) fn new() -> io::Result<Epoll> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, ev: Option<&mut EpollEvent>) -> io::Result<()> {
            let ptr = ev
                .map(|e| e as *mut EpollEvent as *mut c_void)
                .unwrap_or(std::ptr::null_mut());
            if unsafe { epoll_ctl(self.epfd, op, fd, ptr) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_ADD, fd, Some(&mut ev))
        }

        pub(super) fn reregister(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_MOD, fd, Some(&mut ev))
        }

        pub(super) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub(super) fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr() as *mut c_void,
                    self.buf.len() as c_int,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // signal: surface as empty wakeup
                }
                return Err(e);
            }
            for ev in &self.buf[..n as usize] {
                // Copy the packed fields out before touching them.
                let events = ev.events;
                let data = ev.data;
                out.push(Event {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

/// Portable `poll(2)` backend.
pub mod portable {
    use super::*;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x1;
    const POLLOUT: i16 = 0x4;
    const POLLERR: i16 = 0x8;
    const POLLHUP: i16 = 0x10;

    #[cfg(target_os = "linux")]
    type NFds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = u32;

    extern "C" {
        fn poll(fds: *mut c_void, nfds: NFds, timeout: c_int) -> c_int;
    }

    /// A registered-descriptor table re-polled on every wait.
    pub struct PollSet {
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
    }

    fn mask(interest: Interest) -> i16 {
        let mut m = 0;
        if interest.read {
            m |= POLLIN;
        }
        if interest.write {
            m |= POLLOUT;
        }
        m
    }

    impl PollSet {
        pub(super) fn new() -> PollSet {
            PollSet {
                fds: Vec::new(),
                tokens: Vec::new(),
            }
        }

        fn position(&self, fd: RawFd) -> Option<usize> {
            self.fds.iter().position(|p| p.fd == fd)
        }

        pub(super) fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            if self.position(fd).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.fds.push(PollFd {
                fd,
                events: mask(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub(super) fn reregister(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let i = self
                .position(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds[i].events = mask(interest);
            self.tokens[i] = token;
            Ok(())
        }

        pub(super) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self
                .position(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            Ok(())
        }

        pub(super) fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            for p in &mut self.fds {
                p.revents = 0;
            }
            let n = unsafe {
                poll(
                    self.fds.as_mut_ptr() as *mut c_void,
                    self.fds.len() as NFds,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (p, &token) in self.fds.iter().zip(&self.tokens) {
                if p.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: p.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: p.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

// ------------------------------------------------------------- signals

/// Process-level shutdown flag raised by SIGINT/SIGTERM once
/// [`install_shutdown_handler`](signal::install_shutdown_handler)
/// has run.
pub mod signal {
    use super::c_int;
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_sig: c_int) {
        // async-signal-safe: a single relaxed store
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    /// Routes SIGINT and SIGTERM to a flag the serve loop polls, so a
    /// Ctrl-C turns into a graceful drain instead of process death.
    pub fn install_shutdown_handler() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    /// Whether a shutdown signal has arrived.
    pub fn shutdown_requested() -> bool {
        SHUTDOWN.load(Ordering::Relaxed)
    }

    /// Raises the flag programmatically (tests; also lets an in-process
    /// controller request the same drain path as a signal).
    pub fn request_shutdown() {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    /// Clears the flag (tests only — the serve loop runs once).
    pub fn reset() {
        SHUTDOWN.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn backend_smoke(force_poll: bool) {
        let mut poller = Poller::new(force_poll).unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();

        // Nothing readable yet: bounded wait returns empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        a.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        let mut byte = [0u8; 1];
        b.read_exact(&mut byte).unwrap();

        // Write interest on an idle socket reports writable.
        poller
            .reregister(b.as_raw_fd(), 7, Interest::READ_WRITE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        // Peer hangup surfaces as readable (EOF).
        drop(a);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        poller.deregister(b.as_raw_fd()).unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_works() {
        let p = Poller::new(false).unwrap();
        assert_eq!(p.backend(), "epoll");
        backend_smoke(false);
    }

    #[test]
    fn poll_backend_works() {
        let p = Poller::new(true).unwrap();
        assert_eq!(p.backend(), "poll");
        backend_smoke(true);
    }

    #[test]
    fn poll_register_twice_rejected() {
        let mut p = Poller::new(true).unwrap();
        let (a, _b) = UnixStream::pair().unwrap();
        p.register(a.as_raw_fd(), 1, Interest::READ).unwrap();
        assert!(p.register(a.as_raw_fd(), 2, Interest::READ).is_err());
    }

    #[test]
    fn shutdown_flag_roundtrip() {
        signal::reset();
        assert!(!signal::shutdown_requested());
        signal::request_shutdown();
        assert!(signal::shutdown_requested());
        signal::reset();
    }
}
