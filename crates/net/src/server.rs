//! The non-blocking TCP front end.
//!
//! One event-loop thread owns a [`crate::sys::Poller`] (epoll on Linux,
//! poll(2) fallback), the listening socket, and every connection's
//! read/write buffers. Frames are parsed incrementally per connection
//! (pipelining falls out for free: every complete frame dispatches
//! independently and responses are matched by request id, not
//! arrival order), and each decoded request becomes one job on a
//! bounded [`svc::WorkerPool`] of handler threads — so the service's
//! admission-control story extends to the wire: a full handler queue
//! sheds the request with a retryable `overloaded` error *frame*
//! instead of queueing unboundedly, and connections beyond
//! [`NetConfig::max_connections`] are shed at accept.
//!
//! Handlers never touch sockets. They run the query against the
//! shared [`svc::Service`], encode the response, push it onto a
//! shared outbox, and nudge the loop through a wake socketpair; the
//! loop owns all writes (with partial-write carry) so a slow client
//! can never block a handler thread.
//!
//! ## Graceful shutdown
//!
//! [`NetServer::shutdown`] stops accepting, answers any *newly*
//! arriving frame with a typed `shutdown` error, and waits — up to a
//! bounded drain deadline — for in-flight requests to finish and
//! their responses to flush before closing connections and joining
//! the loop. `abq serve` drives this from SIGINT/SIGTERM.

use crate::frame::{
    decode_request, encode_response, ErrorCode, Frame, FrameReader, Request, Response, Schema,
};
use crate::sys::{Interest, Poller};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use svc::{Deadline, RequestCtx, Service, SvcError, WorkerPool};

/// Front-end construction parameters.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Connections beyond this are shed at accept (counted in
    /// `net.shed_at_accept`).
    pub max_connections: usize,
    /// Handler threads bridging the loop to the blocking service;
    /// `0` means "same as the service's worker count".
    pub handlers: usize,
    /// Bounded handler-queue capacity; requests beyond this depth are
    /// shed with a retryable `overloaded` error frame.
    pub handler_queue: usize,
    /// Deadline applied to requests that arrive with `deadline_ms ==
    /// 0`; `0` here means no default.
    pub default_deadline_ms: u32,
    /// Use the portable poll(2) backend even where epoll exists.
    pub force_poll: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 1024,
            handlers: 0,
            handler_queue: 256,
            default_deadline_ms: 0,
            force_poll: false,
        }
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// How long the drained condition must hold before a graceful drain
/// concludes. Bytes a client wrote just before requesting shutdown
/// can still be in flight through the loopback/TCP stack when the
/// drain flag lands; lingering a few poll rounds lets them arrive and
/// get their typed `shutdown` answers instead of a bare close.
const QUIESCE_LINGER: Duration = Duration::from_millis(25);

/// State shared between the event loop, handler threads, and the
/// owning [`NetServer`] handle.
struct Shared {
    /// Encoded response frames awaiting the loop, tagged by
    /// connection token. Dead tokens are silently discarded.
    outbox: Mutex<Vec<(u64, Vec<u8>)>>,
    /// Writing one byte here wakes the loop out of `wait`.
    wake_tx: Mutex<UnixStream>,
    /// Requests dispatched to handlers whose responses have not yet
    /// been pushed to the outbox.
    in_flight: AtomicUsize,
    /// Raised by [`NetServer::shutdown`]: stop accepting, answer new
    /// frames with `shutdown`, drain, exit.
    draining: AtomicBool,
    /// Drain budget (ms) set before `draining`; the loop computes its
    /// absolute deadline when it first observes the flag.
    drain_ms: AtomicU64,
}

impl Shared {
    fn wake(&self) {
        let _ = self.wake_tx.lock().unwrap().write(&[1]);
    }

    fn push_response(&self, token: u64, bytes: Vec<u8>) {
        self.outbox.lock().unwrap().push((token, bytes));
        self.wake();
    }
}

/// One accepted connection's loop-side state.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    /// Encoded-but-unsent response bytes ...
    out: Vec<u8>,
    /// ... and how far into them the kernel has accepted.
    out_at: usize,
    /// Currently registered with write interest.
    want_write: bool,
    /// Stop reading and close once `out` drains (fatal frame error or
    /// peer EOF).
    closing: bool,
    /// Requests from this connection still out at handler threads.
    /// A half-closed (EOF) connection is kept alive until these come
    /// back — a client may pipeline, shut down its write side, and
    /// still expect every answer.
    pending: usize,
}

impl Conn {
    fn out_pending(&self) -> usize {
        self.out.len() - self.out_at
    }
}

/// A running TCP front end. Dropping the handle without calling
/// [`NetServer::shutdown`] shuts down with a zero drain deadline.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    backend: &'static str,
    join: Option<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr`, spawns the event loop and handler pool, and
    /// starts serving `service`.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: Arc<Service>,
        cfg: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let mut poller = Poller::new(cfg.force_poll)?;
        let backend = poller.backend();
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;

        // Pre-touch the listener counters so they appear in /metrics
        // (and /healthz) from the first scrape, not the first error.
        for name in [
            "net.accepted",
            "net.conn_closed",
            "net.shed_at_accept",
            "net.shed_at_dispatch",
            "net.requests",
            "net.responses",
            "net.protocol_errors",
        ] {
            obs::global().counter(name).add(0);
        }

        let shared = Arc::new(Shared {
            outbox: Mutex::new(Vec::new()),
            wake_tx: Mutex::new(wake_tx),
            in_flight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            drain_ms: AtomicU64::new(0),
        });
        let handlers = if cfg.handlers > 0 {
            cfg.handlers
        } else {
            service.threads()
        };
        let pool = WorkerPool::new(handlers, cfg.handler_queue.max(1));
        let loop_shared = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name("net-loop".into())
            .spawn(move || {
                EventLoop {
                    poller,
                    listener,
                    wake_rx,
                    service,
                    pool,
                    shared: loop_shared,
                    cfg,
                    conns: HashMap::new(),
                    next_token: FIRST_CONN_TOKEN,
                    drain_deadline: None,
                    drained_since: None,
                }
                .run();
            })?;
        Ok(NetServer {
            shared,
            local_addr,
            backend,
            join: Some(join),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Which readiness backend the loop runs on (`"epoll"`/`"poll"`).
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// Requests currently dispatched to handlers.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, give in-flight requests up
    /// to `drain` to finish and flush, then close everything and join
    /// the loop.
    pub fn shutdown(mut self, drain: Duration) {
        self.shutdown_inner(drain);
    }

    fn shutdown_inner(&mut self, drain: Duration) {
        if let Some(join) = self.join.take() {
            self.shared.drain_ms.store(
                drain.as_millis().min(u64::MAX as u128) as u64,
                Ordering::Relaxed,
            );
            self.shared.draining.store(true, Ordering::Relaxed);
            self.shared.wake();
            let _ = join.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_inner(Duration::ZERO);
    }
}

struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    service: Arc<Service>,
    pool: WorkerPool,
    shared: Arc<Shared>,
    cfg: NetConfig,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    drain_deadline: Option<Instant>,
    drained_since: Option<Instant>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = Vec::new();
        loop {
            let draining = self.shared.draining.load(Ordering::Relaxed);
            if draining && self.drain_deadline.is_none() {
                // First sight of the flag: stop accepting and start
                // the bounded drain clock.
                // Connections whose handshake already completed sit
                // in the accept backlog; dropping the listener would
                // RST them. Admit them first so their requests get
                // typed `shutdown` answers, then stop accepting.
                self.accept_ready();
                let _ = self.poller.deregister(self.listener.as_raw_fd());
                let budget = Duration::from_millis(self.shared.drain_ms.load(Ordering::Relaxed));
                self.drain_deadline = Some(Instant::now() + budget);
                // Requests already sitting in kernel socket buffers
                // deserve an answer (typed `shutdown` frames) before
                // the drained check can declare victory — sweep-read
                // every connection once instead of waiting for a
                // readiness event that the break below would outrun.
                let tokens: Vec<u64> = self.conns.keys().copied().collect();
                for t in tokens {
                    self.conn_ready(t, true, false);
                }
                self.flush_outbox();
            }
            if let Some(deadline) = self.drain_deadline {
                // in_flight is decremented only *after* the response
                // lands in the outbox, so this ordering can't lose a
                // response that is still being encoded.
                let drained = self.shared.in_flight.load(Ordering::Relaxed) == 0
                    && self.shared.outbox.lock().unwrap().is_empty()
                    && self.conns.values().all(|c| c.out_pending() == 0);
                if drained {
                    // Drained must hold for a linger window: answers
                    // can flush out while the client's final requests
                    // are still in flight toward us.
                    let since = *self.drained_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= QUIESCE_LINGER || Instant::now() >= deadline {
                        break;
                    }
                } else {
                    self.drained_since = None;
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
            let timeout = self.drain_deadline.map(|d| {
                d.saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(5))
            });
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            let batch = std::mem::take(&mut events);
            for ev in batch {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wake(),
                    token => self.conn_ready(token, ev.readable, ev.writable),
                }
            }
            self.flush_outbox();
        }
        // Drain deadline reached (or everything finished): close all.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for t in tokens {
            self.close_conn(t);
        }
        // Handler pool Drop runs remaining queued jobs' drop glue and
        // joins its threads; any stragglers push to an outbox no one
        // reads, which is fine.
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns.len() >= self.cfg.max_connections {
                        obs::counter!("net.shed_at_accept").inc();
                        drop(stream); // immediate close = shed signal
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    obs::counter!("net.accepted").inc();
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            reader: FrameReader::new(),
                            out: Vec::new(),
                            out_at: 0,
                            want_write: false,
                            closing: false,
                            pending: 0,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Moves handler-produced responses into their connections' write
    /// buffers and flushes what the kernel will take.
    fn flush_outbox(&mut self) {
        let ready: Vec<(u64, Vec<u8>)> = std::mem::take(&mut *self.shared.outbox.lock().unwrap());
        let mut touched: Vec<u64> = Vec::new();
        for (token, bytes) in ready {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.out.extend_from_slice(&bytes);
                conn.pending = conn.pending.saturating_sub(1);
                obs::counter!("net.frames_tx").inc();
                if !touched.contains(&token) {
                    touched.push(token);
                }
            }
        }
        for token in touched {
            self.flush_conn(token);
        }
    }

    /// Writes as much of a connection's buffer as the kernel accepts,
    /// keeping write interest registered only while bytes remain.
    fn flush_conn(&mut self, token: u64) {
        let mut close = false;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while conn.out_at < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_at..]) {
                Ok(0) => {
                    close = true;
                    break;
                }
                Ok(n) => {
                    conn.out_at += n;
                    obs::counter!("net.bytes_tx").add(n as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    close = true;
                    break;
                }
            }
        }
        if !close {
            if conn.out_at >= conn.out.len() {
                conn.out.clear();
                conn.out_at = 0;
                if conn.closing && conn.pending == 0 {
                    close = true;
                } else if conn.want_write {
                    conn.want_write = false;
                    let fd = conn.stream.as_raw_fd();
                    let _ = self.poller.reregister(fd, token, Interest::READ);
                }
            } else if !conn.want_write {
                conn.want_write = true;
                let fd = conn.stream.as_raw_fd();
                let _ = self.poller.reregister(fd, token, Interest::READ_WRITE);
            }
        }
        if close {
            self.close_conn(token);
        }
    }

    fn conn_ready(&mut self, token: u64, readable: bool, writable: bool) {
        if writable {
            self.flush_conn(token);
        }
        if !readable || !self.conns.contains_key(&token) {
            return;
        }
        // Read everything available (level-triggered on both
        // backends, but draining now saves a wait round-trip).
        let mut eof = false;
        let mut read_error = false;
        let mut buf = [0u8; 16 * 1024];
        {
            let conn = self.conns.get_mut(&token).unwrap();
            if conn.closing {
                return; // no longer reading; waiting for out to drain
            }
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        obs::counter!("net.bytes_rx").add(n as u64);
                        conn.reader.push(&buf[..n]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        read_error = true;
                        break;
                    }
                }
            }
        }
        if read_error {
            self.close_conn(token);
            return;
        }
        // Extract and dispatch complete frames. Re-borrow per frame:
        // dispatch needs `&mut self` for shed bookkeeping.
        loop {
            let next = match self.conns.get_mut(&token) {
                Some(conn) => conn.reader.next_frame(),
                None => return,
            };
            match next {
                Ok(Some(f)) => {
                    obs::counter!("net.frames_rx").inc();
                    self.dispatch(token, f);
                }
                Ok(None) => break,
                Err(e) => {
                    // Fatal framing error: stream desynchronised.
                    // One typed error frame, then close after flush.
                    obs::counter!("net.protocol_errors").inc();
                    let resp = Response::Error {
                        code: e.code(),
                        retryable: false,
                        message: e.to_string(),
                    };
                    let bytes = encode_response(0, &resp);
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.out.extend_from_slice(&bytes);
                        conn.closing = true;
                        obs::counter!("net.frames_tx").inc();
                    }
                    self.flush_conn(token);
                    return;
                }
            }
        }
        if eof {
            let drain_out = self
                .conns
                .get(&token)
                .is_some_and(|c| c.out_pending() > 0 || c.pending > 0);
            if drain_out {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.closing = true;
                }
            } else {
                self.close_conn(token);
            }
        }
    }

    /// Routes one complete frame: protocol-level answers (ping,
    /// schema, malformed payloads, shutdown) inline on the loop;
    /// query work onto the bounded handler pool.
    fn dispatch(&mut self, token: u64, frame: Frame) {
        obs::counter!("net.requests").inc();
        let request_id = frame.request_id;
        if self.shared.draining.load(Ordering::Relaxed) {
            self.respond_inline(
                token,
                request_id,
                Response::Error {
                    code: ErrorCode::Shutdown,
                    retryable: false,
                    message: "server draining".into(),
                },
            );
            return;
        }
        let req = match decode_request(&frame) {
            Ok(req) => req,
            Err(e) => {
                debug_assert!(!e.is_fatal(), "fatal errors surface in next_frame");
                obs::counter!("net.protocol_errors").inc();
                self.respond_inline(
                    token,
                    request_id,
                    Response::Error {
                        code: e.code(),
                        retryable: false,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        match req {
            Request::Ping => self.respond_inline(token, request_id, Response::Pong),
            Request::Schema => {
                let index = self.service.index();
                let resp = Response::Schema(Schema {
                    num_rows: index.num_rows() as u64,
                    cardinalities: index.attributes().iter().map(|a| a.cardinality).collect(),
                });
                self.respond_inline(token, request_id, resp);
            }
            req => {
                let shared = Arc::clone(&self.shared);
                let service = Arc::clone(&self.service);
                let default_deadline_ms = self.cfg.default_deadline_ms;
                shared.in_flight.fetch_add(1, Ordering::Relaxed);
                let job_shared = Arc::clone(&shared);
                if let Err(e) = self.pool.try_execute(move || {
                    let resp = handle(&service, req, default_deadline_ms);
                    let bytes = encode_response(request_id, &resp);
                    obs::counter!("net.responses").inc();
                    // Push first, decrement second: the drain check
                    // reads in_flight==0 as "every response is in the
                    // outbox or beyond".
                    job_shared.push_response(token, bytes);
                    job_shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                }) {
                    // Admission control at dispatch: typed retryable
                    // error frame instead of an unbounded queue.
                    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                    obs::counter!("net.shed_at_dispatch").inc();
                    self.respond_inline(
                        token,
                        request_id,
                        Response::Error {
                            code: ErrorCode::Overloaded,
                            retryable: true,
                            message: e.to_string(),
                        },
                    );
                } else if let Some(conn) = self.conns.get_mut(&token) {
                    // Keep the connection alive (even through peer
                    // EOF) until this response makes it back.
                    conn.pending += 1;
                }
            }
        }
    }

    fn respond_inline(&mut self, token: u64, request_id: u64, resp: Response) {
        obs::counter!("net.responses").inc();
        let bytes = encode_response(request_id, &resp);
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.out.extend_from_slice(&bytes);
            obs::counter!("net.frames_tx").inc();
        }
        self.flush_conn(token);
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            obs::counter!("net.conn_closed").inc();
        }
    }
}

/// Maps a service error onto the wire taxonomy.
fn svc_error_response(e: SvcError) -> Response {
    let code = match e {
        SvcError::Overloaded { .. } => ErrorCode::Overloaded,
        SvcError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        SvcError::Cancelled => ErrorCode::Cancelled,
        SvcError::Query(_) => ErrorCode::InvalidQuery,
        SvcError::Shutdown => ErrorCode::Shutdown,
        SvcError::WahUnavailable => ErrorCode::WahUnavailable,
        SvcError::RetriesExhausted { .. } => ErrorCode::RetriesExhausted,
        SvcError::ShardQuarantined { .. } => ErrorCode::ShardQuarantined,
    };
    Response::Error {
        code,
        retryable: e.is_transient(),
        message: e.to_string(),
    }
}

fn deadline_for(deadline_ms: u32, default_ms: u32) -> Deadline {
    let ms = if deadline_ms > 0 {
        deadline_ms
    } else {
        default_ms
    };
    if ms == 0 {
        Deadline::none()
    } else {
        Deadline::within(Duration::from_millis(u64::from(ms)))
    }
}

fn degraded_shards(d: &Option<svc::Degraded>) -> Vec<u32> {
    d.as_ref()
        .map(|d| d.shards.iter().map(|&s| s as u32).collect())
        .unwrap_or_default()
}

/// Runs one query request on a handler thread. The net request is the
/// trace root: when the service traces requests, the wire request
/// opens a caller-owned `net.<kind>` trace that the service's
/// `svc.request` span lands under, and finishes it into the flight
/// recorder — so a socket request shows up as one tree, not two.
fn handle(service: &Service, req: Request, default_deadline_ms: u32) -> Response {
    let kind = req.label();
    let trace = if service.tracing_enabled() {
        obs::TraceCtx::start(match kind {
            "rect" => "net.rect",
            "cells" => "net.cells",
            _ => "net.batch",
        })
    } else {
        obs::TraceCtx::disabled()
    };
    let start = Instant::now();
    let resp = match req {
        Request::Rect { deadline_ms, query } => {
            let ctx = RequestCtx::traced(
                deadline_for(deadline_ms, default_deadline_ms),
                trace.clone(),
            );
            match service.try_query_rect_ctx(&query, &ctx) {
                Ok(r) => Response::Rect {
                    degraded: degraded_shards(&r.degraded),
                    rows: r.value.into_iter().map(|v| v as u64).collect(),
                },
                Err(e) => svc_error_response(e),
            }
        }
        Request::Cells { deadline_ms, cells } => {
            let ctx = RequestCtx::traced(
                deadline_for(deadline_ms, default_deadline_ms),
                trace.clone(),
            );
            match service.try_retrieve_cells_ctx(&cells, &ctx) {
                Ok(r) => Response::Cells {
                    degraded: degraded_shards(&r.degraded),
                    hits: r.value,
                },
                Err(e) => svc_error_response(e),
            }
        }
        Request::Batch {
            deadline_ms,
            queries,
        } => {
            let ctx = RequestCtx::traced(
                deadline_for(deadline_ms, default_deadline_ms),
                trace.clone(),
            );
            match service.try_query_batch_ctx(&queries, &ctx) {
                Ok(r) => Response::Batch {
                    degraded: degraded_shards(&r.degraded),
                    results: r
                        .value
                        .into_iter()
                        .map(|rows| rows.into_iter().map(|v| v as u64).collect())
                        .collect(),
                },
                Err(e) => svc_error_response(e),
            }
        }
        Request::Ping | Request::Schema => unreachable!("answered inline by the loop"),
    };
    let us = start.elapsed().as_micros() as u64;
    match kind {
        "rect" => obs::sketch!("net.server_us.rect").record(us),
        "cells" => obs::sketch!("net.server_us.cells").record(us),
        _ => obs::sketch!("net.server_us.batch").record(us),
    }
    if trace.enabled() {
        service.finish_trace(&trace);
    }
    resp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_resolution_prefers_request_over_default() {
        assert!(deadline_for(0, 0).remaining().is_none());
        assert!(deadline_for(0, 50).remaining().unwrap() <= Duration::from_millis(50));
        let d = deadline_for(500, 50).remaining().unwrap();
        assert!(d > Duration::from_millis(100), "request deadline must win");
    }

    #[test]
    fn svc_errors_map_to_typed_frames() {
        let r = svc_error_response(SvcError::Overloaded {
            depth: 4,
            capacity: 4,
        });
        assert!(matches!(
            r,
            Response::Error {
                code: ErrorCode::Overloaded,
                retryable: true,
                ..
            }
        ));
        let r = svc_error_response(SvcError::DeadlineExceeded);
        assert!(matches!(
            r,
            Response::Error {
                code: ErrorCode::DeadlineExceeded,
                retryable: false,
                ..
            }
        ));
        let r = svc_error_response(SvcError::ShardQuarantined { shard: 3 });
        assert!(matches!(
            r,
            Response::Error {
                code: ErrorCode::ShardQuarantined,
                ..
            }
        ));
    }
}
