//! A blocking client for the `ABQ/1` protocol — used by tests, the
//! load generator, and CLI tooling. Pipelining is explicit:
//! [`Client::send`] queues a request on the wire and returns its id,
//! [`Client::recv`] blocks for the next response frame (any id), and
//! [`Client::call`] does one round trip.

use crate::frame::{
    decode_response, encode_request, ErrorCode, FrameError, FrameReader, Request, Response,
};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum NetError {
    /// Transport error (includes "connection closed by server").
    Io(io::Error),
    /// The server sent bytes that don't frame/decode.
    Frame(FrameError),
    /// The server answered with a typed error frame.
    Remote {
        /// Typed error code.
        code: ErrorCode,
        /// Whether the server considers a retry plausible.
        retryable: bool,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The response decoded but wasn't the kind the call expected.
    UnexpectedResponse(&'static str),
    /// The connection dropped and [`crate::ReconnectClient`] could not
    /// re-establish it within its retry budget.
    ReconnectFailed {
        /// Connection attempts made before giving up.
        attempts: usize,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Frame(e) => write!(f, "frame: {e}"),
            NetError::Remote {
                code,
                retryable,
                message,
            } => write!(
                f,
                "remote error {code}{}: {message}",
                if *retryable { " (retryable)" } else { "" }
            ),
            NetError::UnexpectedResponse(what) => write!(f, "unexpected response: {what}"),
            NetError::ReconnectFailed { attempts } => {
                write!(f, "reconnect failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl NetError {
    /// Whether a retry could plausibly succeed (only a retryable
    /// remote error frame, i.e. load shedding).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            NetError::Remote {
                retryable: true,
                ..
            }
        )
    }
}

/// Turns a typed error response into `Err(Remote)`, passing other
/// responses through.
fn ok_or_remote(resp: Response) -> Result<Response, NetError> {
    match resp {
        Response::Error {
            code,
            retryable,
            message,
        } => Err(NetError::Remote {
            code,
            retryable,
            message,
        }),
        other => Ok(other),
    }
}

/// A blocking connection to a [`crate::NetServer`].
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    next_id: u64,
}

impl Client {
    /// Connects (with Nagle disabled — the protocol is request/
    /// response, latency beats batching).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            reader: FrameReader::new(),
            next_id: 1,
        })
    }

    /// Bounds how long [`Client::recv`] blocks; `None` waits forever.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Queues one request on the wire and returns its id — call
    /// repeatedly before any [`Client::recv`] to pipeline.
    pub fn send(&mut self, req: &Request) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let bytes = encode_request(id, req);
        self.stream.write_all(&bytes)?;
        Ok(id)
    }

    /// Queues a request under a caller-chosen id — the substrate of
    /// [`crate::ReconnectClient`]'s replay, which must resend
    /// unanswered requests under their **original** ids after a
    /// reconnect. Also bumps the internal counter past `id` so mixed
    /// use with [`Client::send`] cannot collide.
    pub fn send_with_id(&mut self, id: u64, req: &Request) -> Result<(), NetError> {
        self.next_id = self.next_id.max(id + 1);
        let bytes = encode_request(id, req);
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// Blocks for the next response frame, whichever request it
    /// answers. Typed error frames are returned as `Ok` here so
    /// pipelined callers can match them to ids; use [`Client::call`]
    /// (or `ok_or_remote` semantics) for errors-as-`Err`.
    pub fn recv(&mut self) -> Result<(u64, Response), NetError> {
        loop {
            if let Some(frame) = self.reader.next_frame()? {
                let resp = decode_response(&frame)?;
                return Ok((frame.request_id, resp));
            }
            let mut buf = [0u8; 16 * 1024];
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(NetError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.reader.push(&buf[..n]);
        }
    }

    /// One round trip: send, wait for *that* request's response,
    /// surface typed error frames as [`NetError::Remote`].
    pub fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        let id = self.send(req)?;
        let (got_id, resp) = self.recv()?;
        if got_id != id {
            return Err(NetError::UnexpectedResponse("response id mismatch"));
        }
        ok_or_remote(resp)
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(NetError::UnexpectedResponse("expected pong")),
        }
    }

    /// Fetches the served schema (row count + per-attribute bin
    /// cardinalities) — enough to synthesize valid queries.
    pub fn schema(&mut self) -> Result<crate::frame::Schema, NetError> {
        match self.call(&Request::Schema)? {
            Response::Schema(s) => Ok(s),
            _ => Err(NetError::UnexpectedResponse("expected schema")),
        }
    }

    /// Rectangular query; returns sorted candidate row ids (degraded
    /// shards, if any, are discarded — use [`Client::call`] to see
    /// them).
    pub fn query_rect(
        &mut self,
        query: &bitmap::RectQuery,
        deadline_ms: u32,
    ) -> Result<Vec<u64>, NetError> {
        match self.call(&Request::Rect {
            deadline_ms,
            query: query.clone(),
        })? {
            Response::Rect { rows, .. } => Ok(rows),
            _ => Err(NetError::UnexpectedResponse("expected rect rows")),
        }
    }

    /// Cell-subset retrieval; one boolean per cell, request order.
    pub fn retrieve_cells(
        &mut self,
        cells: &[ab::Cell],
        deadline_ms: u32,
    ) -> Result<Vec<bool>, NetError> {
        match self.call(&Request::Cells {
            deadline_ms,
            cells: cells.to_vec(),
        })? {
            Response::Cells { hits, .. } => Ok(hits),
            _ => Err(NetError::UnexpectedResponse("expected cell hits")),
        }
    }

    /// Batched rectangular queries; one row list per query.
    pub fn query_batch(
        &mut self,
        queries: &[bitmap::RectQuery],
        deadline_ms: u32,
    ) -> Result<Vec<Vec<u64>>, NetError> {
        match self.call(&Request::Batch {
            deadline_ms,
            queries: queries.to_vec(),
        })? {
            Response::Batch { results, .. } => Ok(results),
            _ => Err(NetError::UnexpectedResponse("expected batch results")),
        }
    }

    /// Sends raw bytes down the socket — corruption tests only.
    #[doc(hidden)]
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Shuts down the write half so the server observes a clean EOF.
    pub fn close_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}
