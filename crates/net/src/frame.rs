//! The `ABQ/1` wire protocol: compact length-prefixed binary frames
//! with a versioned header and a CRC-32 trailer (the same
//! [`ab::crc32`] the on-disk formats use).
//!
//! ## Frame layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       2     magic        0xAB51
//! 2       1     version      1
//! 3       1     kind         see [`kind`]
//! 4       8     request_id   caller-chosen; echoed on the response
//! 12      4     payload_len  ≤ MAX_PAYLOAD
//! 16      n     payload      kind-specific body
//! 16+n    4     crc32        over bytes [0, 16+n)
//! ```
//!
//! Requests and responses share the layout; response kinds have the
//! high bit set. Because every byte of the header and payload is
//! covered by the trailer CRC, any single corrupted byte is detected
//! before the payload is interpreted.
//!
//! ## Error taxonomy
//!
//! Framing errors split into two classes with different recovery:
//!
//! * **fatal** ([`FrameError::is_fatal`] = true): bad magic, wrong
//!   version, oversized length, CRC mismatch. Frame *boundaries* can
//!   no longer be trusted, so the server answers one typed
//!   [`Response::Error`] frame (request id 0) and closes the
//!   connection;
//! * **recoverable**: the frame parsed and checksummed but its payload
//!   is malformed (unknown kind, truncated body, trailing bytes). The
//!   stream is still in sync, so the server answers a typed error
//!   frame carrying the offending request id and keeps the connection.

use bitmap::{AttrRange, RectQuery};

/// First two bytes of every frame.
pub const MAGIC: u16 = 0xAB51;
/// Protocol version this build speaks. A frame with a different
/// version is answered with [`ErrorCode::BadVersion`] naming the
/// supported version, so clients can negotiate down.
pub const VERSION: u8 = 1;
/// Fixed header bytes before the payload.
pub const HEADER_LEN: usize = 16;
/// CRC-32 trailer bytes after the payload.
pub const TRAILER_LEN: usize = 4;
/// Upper bound a frame may claim as payload length; anything larger
/// is rejected before allocation ([`FrameError::Oversized`]).
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Sanity caps on repeated elements inside a payload, enforced at
/// decode time so a malicious count cannot drive a huge allocation.
pub const MAX_RANGES: usize = 4096;
/// Max cells per cell-subset request.
pub const MAX_CELLS: usize = 1 << 20;
/// Max rect queries per batch request.
pub const MAX_QUERIES: usize = 4096;

/// Frame kind bytes. Responses set the high bit of their request.
pub mod kind {
    /// Rectangular AB query.
    pub const RECT: u8 = 0x01;
    /// Cell-subset retrieval.
    pub const CELLS: u8 = 0x02;
    /// Batch of rectangular queries.
    pub const BATCH: u8 = 0x03;
    /// Liveness probe.
    pub const PING: u8 = 0x04;
    /// Served-schema request (row count + per-attribute cardinality).
    pub const SCHEMA: u8 = 0x05;
    /// Response to [`RECT`].
    pub const RECT_OK: u8 = 0x81;
    /// Response to [`CELLS`].
    pub const CELLS_OK: u8 = 0x82;
    /// Response to [`BATCH`].
    pub const BATCH_OK: u8 = 0x83;
    /// Response to [`PING`].
    pub const PONG: u8 = 0x84;
    /// Response to [`SCHEMA`].
    pub const SCHEMA_OK: u8 = 0x85;
    /// Typed error response to any request.
    pub const ERROR: u8 = 0xEE;
}

/// Typed error codes carried by [`Response::Error`] frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Admission control shed the request (pool or dispatch queue
    /// full). The only retryable service error.
    Overloaded = 1,
    /// The request's deadline expired before every shard finished.
    DeadlineExceeded = 2,
    /// The request was cancelled.
    Cancelled = 3,
    /// The query is invalid for the served index.
    InvalidQuery = 4,
    /// The service is shutting down (or draining).
    Shutdown = 5,
    /// Exact (WAH) answers are not available on this server.
    WahUnavailable = 6,
    /// A server-side retry loop gave up.
    RetriesExhausted = 7,
    /// An exact answer touched a quarantined shard.
    ShardQuarantined = 8,
    /// Frame bytes did not start with [`MAGIC`].
    BadMagic = 16,
    /// Frame version unsupported; message names the supported one.
    BadVersion = 17,
    /// Claimed payload length exceeds [`MAX_PAYLOAD`].
    Oversized = 18,
    /// Trailer CRC-32 did not match the received bytes.
    BadCrc = 19,
    /// The frame kind byte is not a known request.
    UnknownKind = 20,
    /// The payload was shorter than its counts claim, or had trailing
    /// bytes.
    Malformed = 21,
}

impl ErrorCode {
    /// Decodes the wire value.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match v {
            1 => Overloaded,
            2 => DeadlineExceeded,
            3 => Cancelled,
            4 => InvalidQuery,
            5 => Shutdown,
            6 => WahUnavailable,
            7 => RetriesExhausted,
            8 => ShardQuarantined,
            16 => BadMagic,
            17 => BadVersion,
            18 => Oversized,
            19 => BadCrc,
            20 => UnknownKind,
            21 => Malformed,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::InvalidQuery => "invalid_query",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::WahUnavailable => "wah_unavailable",
            ErrorCode::RetriesExhausted => "retries_exhausted",
            ErrorCode::ShardQuarantined => "shard_quarantined",
            ErrorCode::BadMagic => "bad_magic",
            ErrorCode::BadVersion => "bad_version",
            ErrorCode::Oversized => "oversized",
            ErrorCode::BadCrc => "bad_crc",
            ErrorCode::UnknownKind => "unknown_kind",
            ErrorCode::Malformed => "malformed",
        };
        f.write_str(s)
    }
}

/// Why a frame (or its payload) could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Leading two bytes were not [`MAGIC`].
    BadMagic {
        /// What arrived instead.
        found: u16,
    },
    /// Version byte differs from [`VERSION`].
    BadVersion(u8),
    /// Claimed payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Trailer CRC mismatch.
    BadCrc {
        /// CRC carried by the frame.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// Kind byte is not a known request/response.
    UnknownKind(u8),
    /// Payload ended before a field it promised.
    Truncated(&'static str),
    /// Payload violated a structural rule (count cap, trailing bytes).
    Malformed(&'static str),
}

impl FrameError {
    /// Whether frame boundaries are lost (connection must close).
    /// Payload-level trouble keeps the stream in sync.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            FrameError::BadMagic { .. }
                | FrameError::BadVersion(_)
                | FrameError::Oversized(_)
                | FrameError::BadCrc { .. }
        )
    }

    /// The typed wire code reported for this decode failure.
    pub fn code(&self) -> ErrorCode {
        match self {
            FrameError::BadMagic { .. } => ErrorCode::BadMagic,
            FrameError::BadVersion(_) => ErrorCode::BadVersion,
            FrameError::Oversized(_) => ErrorCode::Oversized,
            FrameError::BadCrc { .. } => ErrorCode::BadCrc,
            FrameError::UnknownKind(_) => ErrorCode::UnknownKind,
            FrameError::Truncated(_) | FrameError::Malformed(_) => ErrorCode::Malformed,
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { found } => {
                write!(f, "bad magic {found:#06x} (expected {MAGIC:#06x})")
            }
            FrameError::BadVersion(v) => {
                write!(f, "unsupported version {v} (this server speaks {VERSION})")
            }
            FrameError::Oversized(n) => {
                write!(f, "payload length {n} exceeds max {MAX_PAYLOAD}")
            }
            FrameError::BadCrc { stored, computed } => {
                write!(
                    f,
                    "crc mismatch: stored {stored:#010x} computed {computed:#010x}"
                )
            }
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            FrameError::Truncated(what) => write!(f, "payload truncated reading {what}"),
            FrameError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded frame: header fields plus the raw (CRC-verified)
/// payload. Interpret with [`decode_request`] / [`decode_response`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Echoed verbatim on the matching response.
    pub request_id: u64,
    /// One of the [`kind`] bytes.
    pub kind: u8,
    /// CRC-verified body bytes.
    pub payload: Vec<u8>,
}

/// A decoded request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Rectangular AB query. `deadline_ms == 0` means "use the
    /// server's default deadline".
    Rect {
        /// Per-request deadline budget in milliseconds (0 = none).
        deadline_ms: u32,
        /// The query.
        query: RectQuery,
    },
    /// Cell-subset retrieval.
    Cells {
        /// Per-request deadline budget in milliseconds (0 = none).
        deadline_ms: u32,
        /// The probed cells.
        cells: Vec<ab::Cell>,
    },
    /// Batch of rectangular queries under one deadline.
    Batch {
        /// Per-request deadline budget in milliseconds (0 = none).
        deadline_ms: u32,
        /// The queries.
        queries: Vec<RectQuery>,
    },
    /// Liveness probe.
    Ping,
    /// Served-schema request.
    Schema,
}

impl Request {
    /// The request's wire kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            Request::Rect { .. } => kind::RECT,
            Request::Cells { .. } => kind::CELLS,
            Request::Batch { .. } => kind::BATCH,
            Request::Ping => kind::PING,
            Request::Schema => kind::SCHEMA,
        }
    }

    /// Short label for metrics.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Rect { .. } => "rect",
            Request::Cells { .. } => "cells",
            Request::Batch { .. } => "batch",
            Request::Ping => "ping",
            Request::Schema => "schema",
        }
    }
}

/// What the server knows about the index it serves — enough for a
/// load generator to synthesize valid queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    /// Rows in the served index.
    pub num_rows: u64,
    /// Bin cardinality per attribute, in attribute order.
    pub cardinalities: Vec<u32>,
}

/// A decoded response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Matching (approximate) global row ids, sorted.
    Rect {
        /// Shards answered conservatively (empty = healthy).
        degraded: Vec<u32>,
        /// Candidate rows.
        rows: Vec<u64>,
    },
    /// One boolean per probed cell, request order.
    Cells {
        /// Shards answered conservatively (empty = healthy).
        degraded: Vec<u32>,
        /// Cell presence answers.
        hits: Vec<bool>,
    },
    /// One row list per batched query.
    Batch {
        /// Shards answered conservatively (empty = healthy).
        degraded: Vec<u32>,
        /// Per-query candidate rows.
        results: Vec<Vec<u64>>,
    },
    /// Liveness answer.
    Pong,
    /// Served-schema answer.
    Schema(Schema),
    /// Typed failure.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Whether a retry could plausibly succeed.
        retryable: bool,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The response's wire kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            Response::Rect { .. } => kind::RECT_OK,
            Response::Cells { .. } => kind::CELLS_OK,
            Response::Batch { .. } => kind::BATCH_OK,
            Response::Pong => kind::PONG,
            Response::Schema(_) => kind::SCHEMA_OK,
            Response::Error { .. } => kind::ERROR,
        }
    }
}

// ---------------------------------------------------------------- encode

struct W(Vec<u8>);

impl W {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_rect(w: &mut W, q: &RectQuery) {
    w.u64(q.row_lo as u64);
    w.u64(q.row_hi as u64);
    w.u16(q.ranges.len() as u16);
    for r in &q.ranges {
        w.u32(r.attribute as u32);
        w.u32(r.lo);
        w.u32(r.hi);
    }
}

fn put_degraded(w: &mut W, degraded: &[u32]) {
    w.u16(degraded.len() as u16);
    for &s in degraded {
        w.u32(s);
    }
}

/// Wraps a payload in a sealed frame: header, payload, CRC trailer.
pub fn seal(request_id: u64, kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = ab::crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Encodes a request into a sealed frame.
pub fn encode_request(request_id: u64, req: &Request) -> Vec<u8> {
    let mut w = W(Vec::new());
    match req {
        Request::Rect { deadline_ms, query } => {
            w.u32(*deadline_ms);
            put_rect(&mut w, query);
        }
        Request::Cells { deadline_ms, cells } => {
            w.u32(*deadline_ms);
            w.u32(cells.len() as u32);
            for c in cells {
                w.u64(c.row as u64);
                w.u32(c.attribute as u32);
                w.u32(c.bin);
            }
        }
        Request::Batch {
            deadline_ms,
            queries,
        } => {
            w.u32(*deadline_ms);
            w.u16(queries.len() as u16);
            for q in queries {
                put_rect(&mut w, q);
            }
        }
        Request::Ping | Request::Schema => {}
    }
    seal(request_id, req.kind(), &w.0)
}

/// Encodes a response into a sealed frame.
pub fn encode_response(request_id: u64, resp: &Response) -> Vec<u8> {
    let mut w = W(Vec::new());
    match resp {
        Response::Rect { degraded, rows } => {
            put_degraded(&mut w, degraded);
            w.u64(rows.len() as u64);
            for &r in rows {
                w.u64(r);
            }
        }
        Response::Cells { degraded, hits } => {
            put_degraded(&mut w, degraded);
            w.u32(hits.len() as u32);
            for &h in hits {
                w.u8(h as u8);
            }
        }
        Response::Batch { degraded, results } => {
            put_degraded(&mut w, degraded);
            w.u16(results.len() as u16);
            for rows in results {
                w.u64(rows.len() as u64);
                for &r in rows {
                    w.u64(r);
                }
            }
        }
        Response::Pong => {}
        Response::Schema(s) => {
            w.u64(s.num_rows);
            w.u16(s.cardinalities.len() as u16);
            for &c in &s.cardinalities {
                w.u32(c);
            }
        }
        Response::Error {
            code,
            retryable,
            message,
        } => {
            w.u16(*code as u16);
            w.u8(*retryable as u8);
            let msg = message.as_bytes();
            let n = msg.len().min(u16::MAX as usize);
            w.u16(n as u16);
            w.0.extend_from_slice(&msg[..n]);
        }
    }
    seal(request_id, resp.kind(), &w.0)
}

// ---------------------------------------------------------------- decode

struct R<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> R<'a> {
    fn new(b: &'a [u8]) -> Self {
        R { b, at: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], FrameError> {
        if self.b.len() - self.at < n {
            return Err(FrameError::Truncated(what));
        }
        let s = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }
    fn u16(&mut self, what: &'static str) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }
    fn u32(&mut self, what: &'static str) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
    fn u64(&mut self, what: &'static str) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.at
    }

    fn done(&self) -> Result<(), FrameError> {
        if self.remaining() != 0 {
            return Err(FrameError::Malformed("trailing bytes after payload"));
        }
        Ok(())
    }
}

fn get_rect(r: &mut R) -> Result<RectQuery, FrameError> {
    let row_lo = r.u64("row_lo")? as usize;
    let row_hi = r.u64("row_hi")? as usize;
    let n = r.u16("range count")? as usize;
    if n > MAX_RANGES {
        return Err(FrameError::Malformed("range count over cap"));
    }
    if r.remaining() < n * 12 {
        return Err(FrameError::Truncated("attribute ranges"));
    }
    let mut ranges = Vec::with_capacity(n);
    for _ in 0..n {
        let attr = r.u32("range attr")? as usize;
        let lo = r.u32("range lo")?;
        let hi = r.u32("range hi")?;
        ranges.push(AttrRange::new(attr, lo, hi));
    }
    Ok(RectQuery::new(ranges, row_lo, row_hi))
}

fn get_degraded(r: &mut R) -> Result<Vec<u32>, FrameError> {
    let n = r.u16("degraded count")? as usize;
    if r.remaining() < n * 4 {
        return Err(FrameError::Truncated("degraded shard ids"));
    }
    (0..n).map(|_| r.u32("degraded shard")).collect()
}

/// Interprets a frame's payload as a request.
pub fn decode_request(frame: &Frame) -> Result<Request, FrameError> {
    let mut r = R::new(&frame.payload);
    let req = match frame.kind {
        kind::RECT => Request::Rect {
            deadline_ms: r.u32("deadline")?,
            query: get_rect(&mut r)?,
        },
        kind::CELLS => {
            let deadline_ms = r.u32("deadline")?;
            let n = r.u32("cell count")? as usize;
            if n > MAX_CELLS {
                return Err(FrameError::Malformed("cell count over cap"));
            }
            if r.remaining() < n * 16 {
                return Err(FrameError::Truncated("cells"));
            }
            let mut cells = Vec::with_capacity(n);
            for _ in 0..n {
                let row = r.u64("cell row")? as usize;
                let attr = r.u32("cell attr")? as usize;
                let bin = r.u32("cell bin")?;
                cells.push(ab::Cell::new(row, attr, bin));
            }
            Request::Cells { deadline_ms, cells }
        }
        kind::BATCH => {
            let deadline_ms = r.u32("deadline")?;
            let n = r.u16("query count")? as usize;
            if n > MAX_QUERIES {
                return Err(FrameError::Malformed("query count over cap"));
            }
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                queries.push(get_rect(&mut r)?);
            }
            Request::Batch {
                deadline_ms,
                queries,
            }
        }
        kind::PING => Request::Ping,
        kind::SCHEMA => Request::Schema,
        other => return Err(FrameError::UnknownKind(other)),
    };
    r.done()?;
    Ok(req)
}

/// Interprets a frame's payload as a response.
pub fn decode_response(frame: &Frame) -> Result<Response, FrameError> {
    let mut r = R::new(&frame.payload);
    let resp = match frame.kind {
        kind::RECT_OK => {
            let degraded = get_degraded(&mut r)?;
            let n = r.u64("row count")? as usize;
            if r.remaining() < n * 8 {
                return Err(FrameError::Truncated("rows"));
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(r.u64("row")?);
            }
            Response::Rect { degraded, rows }
        }
        kind::CELLS_OK => {
            let degraded = get_degraded(&mut r)?;
            let n = r.u32("hit count")? as usize;
            if r.remaining() < n {
                return Err(FrameError::Truncated("hits"));
            }
            let mut hits = Vec::with_capacity(n);
            for _ in 0..n {
                hits.push(r.u8("hit")? != 0);
            }
            Response::Cells { degraded, hits }
        }
        kind::BATCH_OK => {
            let degraded = get_degraded(&mut r)?;
            let n = r.u16("result count")? as usize;
            if n > MAX_QUERIES {
                return Err(FrameError::Malformed("result count over cap"));
            }
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                let m = r.u64("row count")? as usize;
                if r.remaining() < m * 8 {
                    return Err(FrameError::Truncated("rows"));
                }
                let mut rows = Vec::with_capacity(m);
                for _ in 0..m {
                    rows.push(r.u64("row")?);
                }
                results.push(rows);
            }
            Response::Batch { degraded, results }
        }
        kind::PONG => Response::Pong,
        kind::SCHEMA_OK => {
            let num_rows = r.u64("num_rows")?;
            let n = r.u16("attribute count")? as usize;
            if r.remaining() < n * 4 {
                return Err(FrameError::Truncated("cardinalities"));
            }
            let cardinalities = (0..n)
                .map(|_| r.u32("cardinality"))
                .collect::<Result<_, _>>()?;
            Response::Schema(Schema {
                num_rows,
                cardinalities,
            })
        }
        kind::ERROR => {
            let raw = r.u16("error code")?;
            let code = ErrorCode::from_u16(raw).ok_or(FrameError::Malformed("error code"))?;
            let retryable = r.u8("retryable")? != 0;
            let n = r.u16("message length")? as usize;
            let message = String::from_utf8_lossy(r.take(n, "message")?).into_owned();
            Response::Error {
                code,
                retryable,
                message,
            }
        }
        other => return Err(FrameError::UnknownKind(other)),
    };
    r.done()?;
    Ok(resp)
}

// ------------------------------------------------------------- streaming

/// Incremental frame extractor over a byte stream. Push raw reads in,
/// pop whole CRC-verified frames out; partial frames wait for more
/// bytes. A fatal [`FrameError`] poisons the reader — the stream's
/// frame boundaries are gone, so the connection must close.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw bytes read from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily so long-lived connections don't grow forever.
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 64 * 1024) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete frame, `Ok(None)` when more bytes
    /// are needed, or a fatal [`FrameError`] when the stream is
    /// corrupt.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = u16::from_le_bytes([avail[0], avail[1]]);
        if magic != MAGIC {
            return Err(FrameError::BadMagic { found: magic });
        }
        let version = avail[2];
        if version != VERSION {
            return Err(FrameError::BadVersion(version));
        }
        let kind = avail[3];
        let request_id = u64::from_le_bytes(avail[4..12].try_into().unwrap());
        let payload_len = u32::from_le_bytes(avail[12..16].try_into().unwrap());
        if payload_len > MAX_PAYLOAD {
            return Err(FrameError::Oversized(payload_len));
        }
        let total = HEADER_LEN + payload_len as usize + TRAILER_LEN;
        if avail.len() < total {
            return Ok(None);
        }
        let body = &avail[..HEADER_LEN + payload_len as usize];
        let stored = u32::from_le_bytes(
            avail[HEADER_LEN + payload_len as usize..total]
                .try_into()
                .unwrap(),
        );
        let computed = ab::crc32(body);
        if stored != computed {
            return Err(FrameError::BadCrc { stored, computed });
        }
        let payload = body[HEADER_LEN..].to_vec();
        self.start += total;
        Ok(Some(Frame {
            request_id,
            kind,
            payload,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: usize, hi: usize) -> RectQuery {
        RectQuery::new(
            vec![AttrRange::new(0, 1, 3), AttrRange::new(2, 0, 0)],
            lo,
            hi,
        )
    }

    fn roundtrip_request(req: Request) {
        let bytes = encode_request(77, &req);
        let mut fr = FrameReader::new();
        fr.push(&bytes);
        let frame = fr.next_frame().unwrap().unwrap();
        assert_eq!(frame.request_id, 77);
        assert_eq!(decode_request(&frame).unwrap(), req);
        assert!(fr.next_frame().unwrap().is_none());
    }

    fn roundtrip_response(resp: Response) {
        let bytes = encode_response(99, &resp);
        let mut fr = FrameReader::new();
        fr.push(&bytes);
        let frame = fr.next_frame().unwrap().unwrap();
        assert_eq!(frame.request_id, 99);
        assert_eq!(decode_response(&frame).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Rect {
            deadline_ms: 250,
            query: rect(10, 4_000_000_000),
        });
        roundtrip_request(Request::Cells {
            deadline_ms: 0,
            cells: vec![ab::Cell::new(5, 1, 3), ab::Cell::new(0, 0, 0)],
        });
        roundtrip_request(Request::Batch {
            deadline_ms: 9,
            queries: vec![rect(0, 7), RectQuery::new(vec![], 3, 3)],
        });
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Schema);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Rect {
            degraded: vec![1, 3],
            rows: vec![0, 9, u64::MAX],
        });
        roundtrip_response(Response::Cells {
            degraded: vec![],
            hits: vec![true, false, true],
        });
        roundtrip_response(Response::Batch {
            degraded: vec![0],
            results: vec![vec![1, 2], vec![], vec![7]],
        });
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Schema(Schema {
            num_rows: 1 << 40,
            cardinalities: vec![10, 4, 255],
        }));
        roundtrip_response(Response::Error {
            code: ErrorCode::Overloaded,
            retryable: true,
            message: "queue 256/256 full".into(),
        });
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let req = Request::Rect {
            deadline_ms: 1,
            query: rect(0, 99),
        };
        let bytes = [encode_request(1, &req), encode_request(2, &Request::Ping)].concat();
        let mut fr = FrameReader::new();
        let mut got = Vec::new();
        for b in &bytes {
            fr.push(std::slice::from_ref(b));
            while let Some(f) = fr.next_frame().unwrap() {
                got.push(f.request_id);
            }
        }
        assert_eq!(got, vec![1, 2]);
        assert_eq!(fr.pending(), 0);
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut bytes = encode_request(1, &Request::Ping);
        bytes[0] ^= 0xFF;
        let mut fr = FrameReader::new();
        fr.push(&bytes);
        let e = fr.next_frame().unwrap_err();
        assert!(matches!(e, FrameError::BadMagic { .. }) && e.is_fatal());
        assert_eq!(e.code(), ErrorCode::BadMagic);
    }

    #[test]
    fn bad_version_is_fatal() {
        let mut bytes = encode_request(1, &Request::Ping);
        bytes[2] = 9;
        let mut fr = FrameReader::new();
        fr.push(&bytes);
        let e = fr.next_frame().unwrap_err();
        assert_eq!(e, FrameError::BadVersion(9));
        assert!(e.is_fatal());
    }

    #[test]
    fn oversized_length_is_fatal_before_allocation() {
        let mut bytes = encode_request(1, &Request::Ping);
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut fr = FrameReader::new();
        fr.push(&bytes);
        let e = fr.next_frame().unwrap_err();
        assert!(matches!(e, FrameError::Oversized(_)) && e.is_fatal());
    }

    #[test]
    fn any_single_byte_flip_is_caught_by_crc() {
        let bytes = encode_request(
            42,
            &Request::Rect {
                deadline_ms: 7,
                query: rect(3, 9),
            },
        );
        // Flipping any byte after the version/length fields must
        // surface as *some* framing error (usually BadCrc); never a
        // silently different frame.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            let mut fr = FrameReader::new();
            fr.push(&bad);
            match fr.next_frame() {
                Err(_) => {}
                Ok(Some(f)) => panic!("flip at {i} yielded frame {f:?}"),
                // A flipped length byte can make the frame look
                // incomplete — that's a stall, not an accepted frame.
                Ok(None) => assert!((12..16).contains(&i), "flip at {i} stalled"),
            }
        }
    }

    #[test]
    fn truncated_payload_decodes_to_typed_error() {
        // Claim 3 ranges but supply only 1: header/CRC are valid, so
        // the frame parses; the payload decode must fail recoverably.
        let mut w = W(Vec::new());
        w.u32(0); // deadline
        w.u64(0);
        w.u64(10);
        w.u16(3); // lies: only one range follows
        w.u32(0);
        w.u32(1);
        w.u32(2);
        let bytes = seal(5, kind::RECT, &w.0);
        let mut fr = FrameReader::new();
        fr.push(&bytes);
        let frame = fr.next_frame().unwrap().unwrap();
        let e = decode_request(&frame).unwrap_err();
        assert!(!e.is_fatal());
        assert_eq!(e.code(), ErrorCode::Malformed);
    }

    #[test]
    fn unknown_kind_is_recoverable() {
        let bytes = seal(6, 0x5F, &[]);
        let mut fr = FrameReader::new();
        fr.push(&bytes);
        let frame = fr.next_frame().unwrap().unwrap();
        let e = decode_request(&frame).unwrap_err();
        assert_eq!(e, FrameError::UnknownKind(0x5F));
        assert!(!e.is_fatal());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&seal(0, kind::PING, &[])[16..16]); // none
        payload.push(0xAA);
        let bytes = seal(7, kind::PING, &payload);
        let mut fr = FrameReader::new();
        fr.push(&bytes);
        let frame = fr.next_frame().unwrap().unwrap();
        assert!(matches!(
            decode_request(&frame),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn error_codes_roundtrip() {
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Cancelled,
            ErrorCode::InvalidQuery,
            ErrorCode::Shutdown,
            ErrorCode::WahUnavailable,
            ErrorCode::RetriesExhausted,
            ErrorCode::ShardQuarantined,
            ErrorCode::BadMagic,
            ErrorCode::BadVersion,
            ErrorCode::Oversized,
            ErrorCode::BadCrc,
            ErrorCode::UnknownKind,
            ErrorCode::Malformed,
        ] {
            assert_eq!(ErrorCode::from_u16(code as u16), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(999), None);
    }
}
