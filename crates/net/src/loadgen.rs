//! The end-to-end load generator behind `abq loadgen` and the
//! `repro_net` benchmark: drives a live server over real sockets with
//! a deterministic rect/cells/batch mix and reports client-observed
//! throughput and latency quantiles.
//!
//! Two driving disciplines:
//!
//! * **closed-loop** — every connection keeps a fixed pipeline window
//!   of requests outstanding (window 1 = classic back-to-back). Rps
//!   is whatever the server sustains; latency is per-request round
//!   trip.
//! * **open-loop** — requests are issued at a fixed arrival rate
//!   split evenly across connections, and latency is measured from
//!   each request's *scheduled* start, not its actual send, so a
//!   stalled server accrues queueing delay instead of quietly
//!   dropping arrivals (the coordinated-omission correction).
//!
//! The workload is synthesized from the server's own [`Schema`]
//! response via [`hashkit::splitmix64`], mirroring the `abq
//! bench-svc` generator — so the socket numbers in `BENCH_net.json`
//! are comparable with the in-process `BENCH_svc.json` ones.

use crate::client::{Client, NetError};
use crate::frame::{ErrorCode, Request, Response, Schema};
use crate::reconnect::ReconnectClient;
use bitmap::{AttrRange, RectQuery};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Driving discipline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mode {
    /// Each connection keeps `pipeline` requests outstanding.
    Closed {
        /// Outstanding requests per connection (≥ 1).
        pipeline: usize,
    },
    /// Fixed arrival rate (requests/second) across all connections.
    Open {
        /// Aggregate target arrival rate.
        rps: f64,
    },
}

/// Relative weights of the query kinds in the generated mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// Weight of rectangular queries.
    pub rect: u32,
    /// Weight of cell-subset retrievals.
    pub cells: u32,
    /// Weight of batched rectangular queries.
    pub batch: u32,
}

impl Mix {
    /// Rect-only mix.
    pub const RECT: Mix = Mix {
        rect: 1,
        cells: 0,
        batch: 0,
    };
    /// Batch-only mix.
    pub const BATCH: Mix = Mix {
        rect: 0,
        cells: 0,
        batch: 1,
    };

    fn pick(&self, h: u64) -> &'static str {
        let total = self.rect + self.cells + self.batch;
        assert!(total > 0, "mix must have at least one nonzero weight");
        let r = (h % u64::from(total)) as u32;
        if r < self.rect {
            "rect"
        } else if r < self.rect + self.cells {
            "cells"
        } else {
            "batch"
        }
    }
}

/// Load-generation parameters.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent connections.
    pub conns: usize,
    /// How long to drive load.
    pub duration: Duration,
    /// Driving discipline.
    pub mode: Mode,
    /// Query-kind mix.
    pub mix: Mix,
    /// Workload seed (same seed + same schema = same queries).
    pub seed: u64,
    /// Queries per batch request / cells per cells request.
    pub batch_size: usize,
    /// Per-request deadline forwarded on the wire (0 = server
    /// default).
    pub deadline_ms: u32,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            conns: 1,
            duration: Duration::from_secs(5),
            mode: Mode::Closed { pipeline: 1 },
            mix: Mix::RECT,
            seed: 42,
            batch_size: 8,
            deadline_ms: 0,
        }
    }
}

/// Per-kind outcome tallies and latency quantiles (µs).
#[derive(Clone, Debug)]
pub struct KindStats {
    /// `"rect"`, `"cells"`, or `"batch"`.
    pub kind: &'static str,
    /// Successful responses.
    pub ok: u64,
    /// Typed error frames received (sheds included).
    pub errors: u64,
    /// The subset of `errors` that were load sheds
    /// ([`ErrorCode::Overloaded`]) — the retryable kind.
    pub shed: u64,
    /// Client-observed latency quantiles in microseconds.
    pub p50: u64,
    /// 95th percentile (µs).
    pub p95: u64,
    /// 99th percentile (µs).
    pub p99: u64,
    /// 99.9th percentile (µs).
    pub p999: u64,
}

/// What one loadgen run measured.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Per-kind stats, only for kinds with traffic.
    pub kinds: Vec<KindStats>,
    /// All successful responses.
    pub total_ok: u64,
    /// All typed error frames.
    pub total_errors: u64,
    /// All load sheds (subset of `total_errors`).
    pub total_shed: u64,
    /// Transport/protocol failures that ended a connection's run
    /// (after its reconnect budget, if any, ran out).
    pub transport_errors: u64,
    /// Successful client re-dials across all connections (dropped
    /// connections healed by [`ReconnectClient`] mid-run).
    pub reconnects: u64,
    /// Wall-clock duration of the measurement.
    pub elapsed: Duration,
    /// Successful responses per second.
    pub rps: f64,
}

struct KindTally {
    kind: &'static str,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    sketch: obs::QuantileSketch,
}

struct Tallies {
    kinds: [KindTally; 3],
    transport_errors: AtomicU64,
    reconnects: AtomicU64,
}

impl Tallies {
    fn new() -> Tallies {
        let mk = |kind| KindTally {
            kind,
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            sketch: obs::QuantileSketch::new(),
        };
        Tallies {
            kinds: [mk("rect"), mk("cells"), mk("batch")],
            transport_errors: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
        }
    }

    fn tally(&self, kind: &str) -> &KindTally {
        self.kinds
            .iter()
            .find(|t| t.kind == kind)
            .expect("known kind")
    }
}

/// Deterministic request generator seeded from the served schema.
pub struct Workload {
    schema: Schema,
    mix: Mix,
    seed: u64,
    batch_size: usize,
    deadline_ms: u32,
}

impl Workload {
    /// A generator producing the same sequence for the same seed and
    /// schema.
    pub fn new(schema: Schema, cfg: &LoadgenConfig) -> Workload {
        assert!(
            !schema.cardinalities.is_empty() && schema.num_rows > 0,
            "served schema is empty"
        );
        Workload {
            schema,
            mix: cfg.mix,
            seed: cfg.seed,
            batch_size: cfg.batch_size.max(1),
            deadline_ms: cfg.deadline_ms,
        }
    }

    fn rect(&self, i: u64) -> RectQuery {
        let num_rows = self.schema.num_rows as usize;
        let attrs = &self.schema.cardinalities;
        let a = (i % attrs.len() as u64) as usize;
        let card = attrs[a];
        let lo = (hashkit::splitmix64(self.seed ^ i) % u64::from(card)) as u32;
        let hi = (lo + card / 2).min(card - 1);
        let rl = (hashkit::splitmix64(self.seed ^ i ^ 0xBEEF) % num_rows as u64) as usize;
        RectQuery::new(
            vec![AttrRange::new(a, lo, hi)],
            rl.min(num_rows - 1),
            num_rows - 1,
        )
    }

    /// The `i`-th request of the sequence, plus its kind label.
    pub fn request(&self, i: u64) -> (&'static str, Request) {
        let kind = self
            .mix
            .pick(hashkit::splitmix64(self.seed ^ (i << 1) ^ 0xA5));
        match kind {
            "rect" => (
                kind,
                Request::Rect {
                    deadline_ms: self.deadline_ms,
                    query: self.rect(i),
                },
            ),
            "cells" => {
                let num_rows = self.schema.num_rows as usize;
                let attrs = &self.schema.cardinalities;
                let cells = (0..self.batch_size)
                    .map(|j| {
                        let h = hashkit::splitmix64(self.seed ^ i ^ ((j as u64) << 17));
                        let a = (h % attrs.len() as u64) as usize;
                        ab::Cell::new(
                            (h >> 8) as usize % num_rows,
                            a,
                            ((h >> 40) % u64::from(attrs[a])) as u32,
                        )
                    })
                    .collect();
                (
                    kind,
                    Request::Cells {
                        deadline_ms: self.deadline_ms,
                        cells,
                    },
                )
            }
            _ => (
                kind,
                Request::Batch {
                    deadline_ms: self.deadline_ms,
                    queries: (0..self.batch_size)
                        .map(|j| self.rect(i.wrapping_mul(131).wrapping_add(j as u64)))
                        .collect(),
                },
            ),
        }
    }
}

/// Runs one load generation according to `cfg` and reports what the
/// clients observed. Connects `cfg.conns` sockets (plus one up front
/// for the schema fetch).
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, NetError> {
    let schema = Client::connect(&cfg.addr)?.schema()?;
    let workload = Arc::new(Workload::new(schema, cfg));
    let tallies = Arc::new(Tallies::new());
    let started = Instant::now();
    let deadline = started + cfg.duration;

    std::thread::scope(|scope| {
        for conn_id in 0..cfg.conns.max(1) {
            let workload = Arc::clone(&workload);
            let tallies = Arc::clone(&tallies);
            let addr = cfg.addr.clone();
            let mode = cfg.mode;
            let conns = cfg.conns.max(1);
            scope.spawn(move || {
                let outcome = match mode {
                    Mode::Closed { pipeline } => drive_closed(
                        &addr,
                        &workload,
                        &tallies,
                        conn_id as u64,
                        conns,
                        deadline,
                        pipeline,
                    ),
                    Mode::Open { rps } => drive_open(
                        &addr,
                        &workload,
                        &tallies,
                        conn_id as u64,
                        conns,
                        deadline,
                        rps,
                    ),
                };
                if outcome.is_err() {
                    tallies.transport_errors.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let elapsed = started.elapsed();
    let kinds: Vec<KindStats> = tallies
        .kinds
        .iter()
        .filter(|t| t.ok.load(Ordering::Relaxed) + t.errors.load(Ordering::Relaxed) > 0)
        .map(|t| KindStats {
            kind: t.kind,
            ok: t.ok.load(Ordering::Relaxed),
            errors: t.errors.load(Ordering::Relaxed),
            shed: t.shed.load(Ordering::Relaxed),
            p50: t.sketch.quantile(0.50),
            p95: t.sketch.quantile(0.95),
            p99: t.sketch.quantile(0.99),
            p999: t.sketch.quantile(0.999),
        })
        .collect();
    let total_ok: u64 = kinds.iter().map(|k| k.ok).sum();
    let total_errors: u64 = kinds.iter().map(|k| k.errors).sum();
    let total_shed: u64 = kinds.iter().map(|k| k.shed).sum();
    Ok(LoadgenReport {
        kinds,
        total_ok,
        total_errors,
        total_shed,
        transport_errors: tallies.transport_errors.load(Ordering::Relaxed),
        reconnects: tallies.reconnects.load(Ordering::Relaxed),
        elapsed,
        rps: total_ok as f64 / elapsed.as_secs_f64().max(1e-9),
    })
}

/// Records one received response against its kind tally.
fn record(tallies: &Tallies, kind: &'static str, resp: &Response, latency: Duration) {
    let t = tallies.tally(kind);
    match resp {
        Response::Error { code, .. } => {
            t.errors.fetch_add(1, Ordering::Relaxed);
            if *code == ErrorCode::Overloaded {
                t.shed.fetch_add(1, Ordering::Relaxed);
            }
        }
        _ => {
            t.ok.fetch_add(1, Ordering::Relaxed);
            t.sketch.record(latency.as_micros() as u64);
        }
    }
}

/// Dials one load-driving connection: self-healing, so a server
/// restart mid-run costs re-dial latency instead of the connection.
fn dial(addr: &str, conn_id: u64) -> Result<ReconnectClient, NetError> {
    let mut client = ReconnectClient::connect_with(addr, svc::RetryPolicy::default(), conn_id)?;
    client.set_read_timeout(Some(Duration::from_secs(30)))?;
    Ok(client)
}

/// Closed loop: keep `pipeline` requests outstanding until the
/// deadline, then drain.
fn drive_closed(
    addr: &str,
    workload: &Workload,
    tallies: &Tallies,
    conn_id: u64,
    conns: usize,
    deadline: Instant,
    pipeline: usize,
) -> Result<(), NetError> {
    let mut client = dial(addr, conn_id)?;
    let outcome = drive_closed_on(
        &mut client,
        workload,
        tallies,
        conn_id,
        conns,
        deadline,
        pipeline,
    );
    tallies
        .reconnects
        .fetch_add(client.reconnects(), Ordering::Relaxed);
    outcome
}

fn drive_closed_on(
    client: &mut ReconnectClient,
    workload: &Workload,
    tallies: &Tallies,
    conn_id: u64,
    conns: usize,
    deadline: Instant,
    pipeline: usize,
) -> Result<(), NetError> {
    let pipeline = pipeline.max(1);
    // Interleave the global sequence across connections so each
    // connection's sub-sequence is deterministic and disjoint.
    let mut seq = conn_id;
    // id -> (kind, send instant)
    let mut outstanding: Vec<(u64, &'static str, Instant)> = Vec::with_capacity(pipeline);
    loop {
        while outstanding.len() < pipeline && Instant::now() < deadline {
            let (kind, req) = workload.request(seq);
            seq += conns as u64;
            let id = client.send(&req)?;
            outstanding.push((id, kind, Instant::now()));
        }
        if outstanding.is_empty() {
            return Ok(());
        }
        let (got_id, resp) = client.recv()?;
        let pos = outstanding
            .iter()
            .position(|&(id, _, _)| id == got_id)
            .ok_or(NetError::UnexpectedResponse("unknown response id"))?;
        let (_, kind, sent) = outstanding.swap_remove(pos);
        record(tallies, kind, &resp, sent.elapsed());
    }
}

/// Open loop: issue at `rps / conns` per connection, measuring from
/// the scheduled arrival so server stalls show up as queueing delay.
fn drive_open(
    addr: &str,
    workload: &Workload,
    tallies: &Tallies,
    conn_id: u64,
    conns: usize,
    deadline: Instant,
    rps: f64,
) -> Result<(), NetError> {
    let mut client = dial(addr, conn_id)?;
    let outcome = drive_open_on(
        &mut client,
        workload,
        tallies,
        conn_id,
        conns,
        deadline,
        rps,
    );
    tallies
        .reconnects
        .fetch_add(client.reconnects(), Ordering::Relaxed);
    outcome
}

fn drive_open_on(
    client: &mut ReconnectClient,
    workload: &Workload,
    tallies: &Tallies,
    conn_id: u64,
    conns: usize,
    deadline: Instant,
    rps: f64,
) -> Result<(), NetError> {
    let per_conn = (rps / conns as f64).max(0.001);
    let interval = Duration::from_secs_f64(1.0 / per_conn);
    let mut seq = conn_id;
    // Stagger connection start offsets so arrivals interleave.
    let mut scheduled = Instant::now() + interval.mul_f64(conn_id as f64 / conns as f64);
    loop {
        if scheduled >= deadline {
            return Ok(());
        }
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let (kind, req) = workload.request(seq);
        seq += conns as u64;
        client.send(&req)?;
        let (_, resp) = client.recv()?;
        // Latency from the scheduled start: includes any time we were
        // late issuing because the previous round trip overran.
        record(tallies, kind, &resp, scheduled.elapsed());
        scheduled += interval;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema {
            num_rows: 1000,
            cardinalities: vec![6, 4],
        }
    }

    fn cfg(mix: Mix) -> LoadgenConfig {
        LoadgenConfig {
            mix,
            batch_size: 3,
            ..LoadgenConfig::default()
        }
    }

    #[test]
    fn workload_is_deterministic_and_valid() {
        let w1 = Workload::new(
            schema(),
            &cfg(Mix {
                rect: 1,
                cells: 1,
                batch: 1,
            }),
        );
        let w2 = Workload::new(
            schema(),
            &cfg(Mix {
                rect: 1,
                cells: 1,
                batch: 1,
            }),
        );
        let mut kinds_seen = std::collections::HashSet::new();
        for i in 0..200 {
            let (k1, r1) = w1.request(i);
            let (k2, r2) = w2.request(i);
            assert_eq!(k1, k2);
            assert_eq!(r1, r2, "same seed must give same request");
            kinds_seen.insert(k1);
            match r1 {
                Request::Rect { query, .. } => {
                    assert!(query.row_hi < 1000 && query.row_lo <= query.row_hi);
                    for r in &query.ranges {
                        assert!(r.attribute < 2);
                        assert!(r.hi < [6u32, 4][r.attribute] && r.lo <= r.hi);
                    }
                }
                Request::Cells { cells, .. } => {
                    assert_eq!(cells.len(), 3);
                    for c in &cells {
                        assert!(c.row < 1000 && c.attribute < 2);
                        assert!(c.bin < [6u32, 4][c.attribute]);
                    }
                }
                Request::Batch { queries, .. } => assert_eq!(queries.len(), 3),
                other => panic!("unexpected request {other:?}"),
            }
        }
        assert_eq!(kinds_seen.len(), 3, "uniform mix must produce all kinds");
    }

    #[test]
    fn mix_weights_respected() {
        assert_eq!(Mix::RECT.pick(7), "rect");
        assert_eq!(Mix::BATCH.pick(123), "batch");
        let m = Mix {
            rect: 1,
            cells: 1,
            batch: 0,
        };
        for h in 0..10 {
            assert_ne!(m.pick(h), "batch");
        }
    }

    #[test]
    #[should_panic(expected = "nonzero weight")]
    fn zero_mix_panics() {
        Mix {
            rect: 0,
            cells: 0,
            batch: 0,
        }
        .pick(1);
    }
}
