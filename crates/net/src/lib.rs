//! # TCP front end for the AB query service
//!
//! A zero-dependency network layer that puts [`svc::Service`] behind
//! a real socket, so the repo's headline throughput numbers are
//! end-to-end (client → wire → admission → shards → wire → client)
//! instead of in-process:
//!
//! * [`frame`] — the `ABQ/1` wire protocol: 16-byte versioned header,
//!   length-prefixed payload, CRC-32 trailer (reusing [`ab::crc32`]),
//!   typed error frames, incremental [`frame::FrameReader`];
//! * [`sys`] — the readiness layer: epoll on Linux via hand-rolled
//!   FFI, a portable poll(2) fallback (also selectable on Linux), and
//!   SIGINT/SIGTERM capture for graceful drains;
//! * [`server`] — the single-threaded event loop + bounded handler
//!   pool: pipelined requests per connection, admission control at
//!   accept *and* dispatch (reusing [`svc::WorkerPool`] shedding),
//!   per-request deadlines over the wire, graceful shutdown;
//! * [`client`] — a blocking [`Client`] for tests and tooling, with
//!   explicit pipelining;
//! * [`reconnect`] — [`ReconnectClient`], the self-healing wrapper:
//!   bounded decorrelated-jitter re-dial (reusing [`svc::retry()`]) and
//!   replay of unanswered — idempotent — requests under their
//!   original ids;
//! * [`loadgen`] — closed-loop and open-loop (fixed-arrival-rate)
//!   load generation with coordinated-omission-corrected latency.
//!
//! ## Quick start
//!
//! ```
//! use ab::{AbConfig, Level};
//! use bitmap::{AttrRange, BinnedColumn, BinnedTable, RectQuery};
//! use std::sync::Arc;
//! use svc::{Service, SvcConfig};
//!
//! let table = BinnedTable::new(vec![BinnedColumn::new(
//!     "temp",
//!     (0..500).map(|i| (i % 8) as u32).collect(),
//!     8,
//! )]);
//! let svc = Arc::new(Service::build(
//!     &table,
//!     &AbConfig::new(Level::PerAttribute).with_alpha(16),
//!     &SvcConfig { threads: 2, shards: 2, ..SvcConfig::default() },
//! ));
//! let server = net::NetServer::bind("127.0.0.1:0", Arc::clone(&svc), net::NetConfig::default())
//!     .unwrap();
//! let mut client = net::Client::connect(server.local_addr()).unwrap();
//! let q = RectQuery::new(vec![AttrRange::new(0, 6, 7)], 0, 499);
//! let over_wire = client.query_rect(&q, 0).unwrap();
//! let in_proc: Vec<u64> = svc.query_rect(&q).unwrap().into_iter().map(|r| r as u64).collect();
//! assert_eq!(over_wire, in_proc); // bit-identical across the socket
//! server.shutdown(std::time::Duration::from_secs(1));
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod loadgen;
pub mod reconnect;
pub mod server;
pub mod sys;

pub use client::{Client, NetError};
pub use frame::{ErrorCode, Frame, FrameError, FrameReader, Request, Response, Schema};
pub use reconnect::ReconnectClient;
pub use server::{NetConfig, NetServer};
