//! A self-healing wrapper over [`Client`]: when the connection drops
//! (EOF, reset, refused write), it re-dials with the bounded
//! decorrelated-jitter backoff from [`svc::retry()`] and **resends only
//! the unanswered requests**, under their original ids. Every `ABQ/1`
//! request is a read (ping, schema, rect, cells, batch), so replay is
//! idempotent by construction — the server may have executed a request
//! whose response was lost, and executing it again returns the same
//! answer.
//!
//! What does *not* trigger a reconnect: read **timeouts** (the
//! connection is fine, the answer is late — reconnecting would turn a
//! slow query into a duplicate storm) and typed error frames (the
//! server is healthy and said no). When the retry budget runs out the
//! caller gets the typed [`NetError::ReconnectFailed`].

use crate::client::{Client, NetError};
use crate::frame::{Request, Response};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;
use svc::{RetryPolicy, SvcError};

/// A [`Client`] that transparently re-dials and replays unanswered
/// requests across connection drops.
pub struct ReconnectClient {
    addr: SocketAddr,
    inner: Client,
    policy: RetryPolicy,
    seed: u64,
    read_timeout: Option<Duration>,
    /// Unanswered requests by id — the replay set after a reconnect.
    pending: BTreeMap<u64, Request>,
    next_id: u64,
    reconnects: u64,
}

impl ReconnectClient {
    /// Connects with the default [`RetryPolicy`] and seed 0.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<ReconnectClient> {
        Self::connect_with(addr, RetryPolicy::default(), 0)
    }

    /// Connects with an explicit reconnect budget. `seed` drives the
    /// backoff jitter, so a fleet of clients started with distinct
    /// seeds won't re-dial in lockstep.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        policy: RetryPolicy,
        seed: u64,
    ) -> io::Result<ReconnectClient> {
        // Resolve once: reconnects must target the same server.
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        Ok(ReconnectClient {
            addr,
            inner: Client::connect(addr)?,
            policy,
            seed,
            read_timeout: None,
            pending: BTreeMap::new(),
            next_id: 1,
            reconnects: 0,
        })
    }

    /// Bounds how long a receive blocks; survives reconnects.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.read_timeout = timeout;
        self.inner.set_read_timeout(timeout)
    }

    /// Successful re-dials so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Tears the current connection down and re-dials under the retry
    /// policy, then replays every pending request under its original
    /// id. Transport errors during replay count as another drop and
    /// are retried within the same budget.
    fn reconnect_and_replay(&mut self) -> Result<(), NetError> {
        let (addr, timeout) = (self.addr, self.read_timeout);
        let pending = &self.pending;
        let seed = self.seed ^ self.reconnects;
        let redialed = svc::retry(&self.policy, seed, |_attempt| {
            // Any failure here is transport-level; map it onto the one
            // error `svc::retry` treats as transient so the backoff
            // loop owns the pacing.
            let transient = |_| SvcError::Overloaded {
                depth: 0,
                capacity: 0,
            };
            let mut fresh = Client::connect(addr).map_err(transient)?;
            fresh.set_read_timeout(timeout).map_err(transient)?;
            for (&id, req) in pending {
                fresh
                    .send_with_id(id, req)
                    .map_err(|_| transient(io::Error::other("replay write failed")))?;
            }
            Ok(fresh)
        });
        match redialed {
            Ok(fresh) => {
                self.inner = fresh;
                self.reconnects += 1;
                obs::counter!("net.client.reconnects").inc();
                Ok(())
            }
            Err(SvcError::RetriesExhausted { attempts }) => {
                obs::counter!("net.client.reconnect_failures").inc();
                Err(NetError::ReconnectFailed { attempts })
            }
            // retry() only surfaces transient errors as exhaustion;
            // anything else would be a bug in the mapping above.
            Err(_) => Err(NetError::ReconnectFailed { attempts: 0 }),
        }
    }

    /// Whether a transport error means the connection is gone (worth
    /// re-dialing) rather than merely slow (a read timeout).
    fn is_disconnect(e: &io::Error) -> bool {
        !matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
        )
    }

    /// Queues one request, tracking it for replay. A dead socket at
    /// write time triggers the reconnect (which sends it as part of
    /// the replay).
    pub fn send(&mut self, req: &Request) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.insert(id, req.clone());
        match self.inner.send_with_id(id, req) {
            Ok(()) => Ok(id),
            Err(NetError::Io(ref e)) if Self::is_disconnect(e) => {
                self.reconnect_and_replay()?;
                Ok(id)
            }
            Err(e) => Err(e),
        }
    }

    /// Blocks for the next response frame, re-dialing and replaying on
    /// connection loss. Timeouts and decode errors propagate.
    pub fn recv(&mut self) -> Result<(u64, Response), NetError> {
        loop {
            match self.inner.recv() {
                Ok((id, resp)) => {
                    self.pending.remove(&id);
                    return Ok((id, resp));
                }
                Err(NetError::Io(ref e)) if Self::is_disconnect(e) => {
                    self.reconnect_and_replay()?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One round trip with reconnect-and-replay underneath; typed
    /// error frames surface as [`NetError::Remote`].
    pub fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        let id = self.send(req)?;
        loop {
            let (got_id, resp) = self.recv()?;
            if got_id == id {
                return match resp {
                    Response::Error {
                        code,
                        retryable,
                        message,
                    } => Err(NetError::Remote {
                        code,
                        retryable,
                        message,
                    }),
                    other => Ok(other),
                };
            }
            // A response for an older (pipelined) request: already
            // cleared from pending by recv; keep waiting for ours.
        }
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(NetError::UnexpectedResponse("expected pong")),
        }
    }

    /// Fetches the served schema.
    pub fn schema(&mut self) -> Result<crate::frame::Schema, NetError> {
        match self.call(&Request::Schema)? {
            Response::Schema(s) => Ok(s),
            _ => Err(NetError::UnexpectedResponse("expected schema")),
        }
    }

    /// Rectangular query; sorted candidate row ids.
    pub fn query_rect(
        &mut self,
        query: &bitmap::RectQuery,
        deadline_ms: u32,
    ) -> Result<Vec<u64>, NetError> {
        match self.call(&Request::Rect {
            deadline_ms,
            query: query.clone(),
        })? {
            Response::Rect { rows, .. } => Ok(rows),
            _ => Err(NetError::UnexpectedResponse("expected rect rows")),
        }
    }

    /// Cell-subset retrieval; one boolean per cell, request order.
    pub fn retrieve_cells(
        &mut self,
        cells: &[ab::Cell],
        deadline_ms: u32,
    ) -> Result<Vec<bool>, NetError> {
        match self.call(&Request::Cells {
            deadline_ms,
            cells: cells.to_vec(),
        })? {
            Response::Cells { hits, .. } => Ok(hits),
            _ => Err(NetError::UnexpectedResponse("expected cell hits")),
        }
    }

    /// Batched rectangular queries; one row list per query.
    pub fn query_batch(
        &mut self,
        queries: &[bitmap::RectQuery],
        deadline_ms: u32,
    ) -> Result<Vec<Vec<u64>>, NetError> {
        match self.call(&Request::Batch {
            deadline_ms,
            queries: queries.to_vec(),
        })? {
            Response::Batch { results, .. } => Ok(results),
            _ => Err(NetError::UnexpectedResponse("expected batch results")),
        }
    }
}
