//! End-to-end tests over real loopback sockets: differential
//! (socket answers bit-identical to in-process), pipelined-response
//! matching by request id, admission control, deadlines over the
//! wire, and graceful shutdown draining.

use ab::{AbConfig, Level};
use bitmap::{AttrRange, BinnedColumn, BinnedTable, RectQuery};
use net::frame::{kind, Request, Response};
use net::{Client, ErrorCode, NetConfig, NetError, NetServer};
use std::sync::Arc;
use std::time::Duration;
use svc::{Service, SvcConfig};

fn table(n: usize) -> BinnedTable {
    BinnedTable::new(vec![
        BinnedColumn::new(
            "a",
            (0..n)
                .map(|i| (hashkit::splitmix64(i as u64) % 6) as u32)
                .collect(),
            6,
        ),
        BinnedColumn::new(
            "b",
            (0..n)
                .map(|i| (hashkit::splitmix64(!(i as u64)) % 4) as u32)
                .collect(),
            4,
        ),
    ])
}

fn service(n: usize) -> Arc<Service> {
    Arc::new(Service::build(
        &table(n),
        &AbConfig::new(Level::PerAttribute).with_alpha(8),
        &SvcConfig {
            threads: 2,
            shards: 4,
            ..SvcConfig::default()
        },
    ))
}

fn start(svc: &Arc<Service>, cfg: NetConfig) -> NetServer {
    NetServer::bind("127.0.0.1:0", Arc::clone(svc), cfg).expect("bind")
}

fn rect(a: usize, lo: u32, hi: u32, rl: usize, rh: usize) -> RectQuery {
    RectQuery::new(vec![AttrRange::new(a, lo, hi)], rl, rh)
}

/// Runs a body against both readiness backends so the poll(2)
/// fallback stays as honest as epoll.
fn both_backends(f: impl Fn(NetConfig)) {
    f(NetConfig::default());
    f(NetConfig {
        force_poll: true,
        ..NetConfig::default()
    });
}

#[test]
fn socket_answers_are_bit_identical_to_in_process() {
    let svc = service(500);
    both_backends(|cfg| {
        let server = start(&svc, cfg);
        let mut client = Client::connect(server.local_addr()).unwrap();

        for q in [
            rect(0, 1, 4, 0, 499),
            rect(1, 0, 2, 13, 400),
            RectQuery::new(
                vec![AttrRange::new(0, 0, 5), AttrRange::new(1, 1, 3)],
                250,
                260,
            ),
            RectQuery::new(vec![], 490, 499),
        ] {
            let wire = client.query_rect(&q, 0).unwrap();
            let local: Vec<u64> = svc
                .query_rect(&q)
                .unwrap()
                .into_iter()
                .map(|r| r as u64)
                .collect();
            assert_eq!(wire, local, "socket result differs for {q:?}");
        }

        // Cells: probe every row's true bin — all true over the wire.
        let t = table(500);
        let cells: Vec<ab::Cell> = (0..500)
            .step_by(7)
            .map(|r| ab::Cell::new(r, 0, t.column(0).bins[r]))
            .collect();
        let wire = client.retrieve_cells(&cells, 0).unwrap();
        let local = svc.retrieve_cells(&cells).unwrap();
        assert_eq!(wire, local);
        assert!(wire.iter().all(|&b| b), "false negative over the wire");

        // Batch matches per-query results.
        let qs = vec![rect(0, 0, 2, 0, 499), rect(1, 1, 3, 100, 250)];
        let wire = client.query_batch(&qs, 0).unwrap();
        let local: Vec<Vec<u64>> = svc
            .query_batch(&qs)
            .unwrap()
            .into_iter()
            .map(|rows| rows.into_iter().map(|r| r as u64).collect())
            .collect();
        assert_eq!(wire, local);

        server.shutdown(Duration::from_secs(2));
    });
}

#[test]
fn pipelined_responses_match_by_request_id() {
    let svc = service(400);
    both_backends(|cfg| {
        let server = start(&svc, cfg);
        let mut client = Client::connect(server.local_addr()).unwrap();

        // Queue 24 different requests before reading anything.
        let queries: Vec<RectQuery> = (0..24)
            .map(|i| rect(i % 2, 0, (i as u32 % 3) + 1, (i * 7) % 300, 399))
            .collect();
        let mut expected = std::collections::HashMap::new();
        for q in &queries {
            let id = client
                .send(&Request::Rect {
                    deadline_ms: 0,
                    query: q.clone(),
                })
                .unwrap();
            let local: Vec<u64> = svc
                .query_rect(q)
                .unwrap()
                .into_iter()
                .map(|r| r as u64)
                .collect();
            expected.insert(id, local);
        }
        // Responses may arrive in any order; every id must appear
        // exactly once with the right (bit-identical) answer.
        for _ in 0..queries.len() {
            let (id, resp) = client.recv().unwrap();
            let want = expected.remove(&id).expect("duplicate or unknown id");
            match resp {
                Response::Rect { rows, .. } => assert_eq!(rows, want, "wrong rows for id {id}"),
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert!(expected.is_empty());
        server.shutdown(Duration::from_secs(2));
    });
}

#[test]
fn ping_schema_and_errors_over_the_wire() {
    let svc = service(300);
    let server = start(&svc, NetConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    client.ping().unwrap();

    let schema = client.schema().unwrap();
    assert_eq!(schema.num_rows, 300);
    assert_eq!(schema.cardinalities, vec![6, 4]);

    // An out-of-range query comes back as a typed invalid_query frame.
    let bad = rect(0, 0, 99, 0, 299);
    match client.query_rect(&bad, 0) {
        Err(NetError::Remote {
            code: ErrorCode::InvalidQuery,
            retryable: false,
            message,
        }) => assert!(message.contains("out of range"), "message: {message}"),
        other => panic!("expected invalid_query, got {other:?}"),
    }

    // WAH exactness isn't built -> typed wah_unavailable... but only
    // rect/cells/batch ride the wire; exact answers are not part of
    // ABQ/1, so nothing to assert here beyond the service contract.

    // An expired deadline surfaces as deadline_exceeded.
    match client.query_rect(&rect(0, 0, 5, 0, 299), 1) {
        Ok(_) => {} // tiny index can finish inside 1ms; fine
        Err(NetError::Remote {
            code: ErrorCode::DeadlineExceeded,
            ..
        }) => {}
        other => panic!("expected rows or deadline_exceeded, got {other:?}"),
    }
    server.shutdown(Duration::from_secs(2));
}

#[test]
fn dispatch_overload_sheds_with_retryable_error_frame() {
    let svc = service(300);
    // One handler, queue of one: the third pipelined request must
    // shed while the first two occupy the handler + queue.
    let server = start(
        &svc,
        NetConfig {
            handlers: 1,
            handler_queue: 1,
            ..NetConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();
    let q = rect(0, 0, 5, 0, 299);
    let n = 40;
    for _ in 0..n {
        client
            .send(&Request::Rect {
                deadline_ms: 0,
                query: q.clone(),
            })
            .unwrap();
    }
    let mut ok = 0;
    let mut shed = 0;
    for _ in 0..n {
        match client.recv().unwrap() {
            (_, Response::Rect { .. }) => ok += 1,
            (
                _,
                Response::Error {
                    code: ErrorCode::Overloaded,
                    retryable,
                    ..
                },
            ) => {
                assert!(retryable, "overload must be marked retryable");
                shed += 1;
            }
            (_, other) => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(ok + shed, n);
    assert!(ok > 0, "some requests must be served");
    server.shutdown(Duration::from_secs(2));
}

#[test]
fn accept_overload_sheds_connections() {
    let svc = service(100);
    let server = start(
        &svc,
        NetConfig {
            max_connections: 1,
            ..NetConfig::default()
        },
    );
    let mut first = Client::connect(server.local_addr()).unwrap();
    first.ping().unwrap(); // ensure conn 1 is fully registered
    let mut second = Client::connect(server.local_addr()).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // The shed connection is closed without a response frame.
    match second.ping() {
        Err(NetError::Io(_)) => {}
        other => panic!("expected shed connection, got {other:?}"),
    }
    // The admitted connection keeps working.
    first.ping().unwrap();
    server.shutdown(Duration::from_secs(2));
}

#[test]
fn graceful_shutdown_drains_in_flight_responses() {
    let svc = service(400);
    let server = start(&svc, NetConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Pipeline a burst, then shut down immediately: every already-
    // dispatched request must still get its response before close.
    let q = rect(0, 0, 5, 0, 399);
    let mut sent = 0;
    for _ in 0..16 {
        client
            .send(&Request::Rect {
                deadline_ms: 0,
                query: q.clone(),
            })
            .unwrap();
        sent += 1;
    }
    server.shutdown(Duration::from_secs(5));
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut answered = 0;
    loop {
        match client.recv() {
            Ok((_, Response::Rect { .. })) => answered += 1,
            Ok((
                _,
                Response::Error {
                    code: ErrorCode::Shutdown,
                    ..
                },
            )) => answered += 1, // raced the drain flag: typed, not dropped
            Ok((_, other)) => panic!("unexpected response {other:?}"),
            Err(_) => break, // clean close after the drain
        }
    }
    assert_eq!(
        answered, sent,
        "graceful drain must answer every accepted request"
    );
}

#[test]
fn eof_after_pipelined_requests_still_answers() {
    // A client that sends requests and half-closes must still get
    // responses (drain-out on EOF).
    let svc = service(300);
    let server = start(&svc, NetConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let id = client
        .send(&Request::Rect {
            deadline_ms: 0,
            query: rect(0, 0, 3, 0, 299),
        })
        .unwrap();
    client.close_write().unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let (got, resp) = client.recv().unwrap();
    assert_eq!(got, id);
    assert!(matches!(resp, Response::Rect { .. }));
    server.shutdown(Duration::from_secs(2));
}

#[test]
fn unknown_kind_keeps_connection_alive() {
    let svc = service(100);
    let server = start(&svc, NetConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.send_raw(&net::frame::seal(9, 0x7A, &[])).unwrap();
    let (id, resp) = client.recv().unwrap();
    assert_eq!(id, 9);
    assert!(matches!(
        resp,
        Response::Error {
            code: ErrorCode::UnknownKind,
            ..
        }
    ));
    // Stream stayed in sync: a normal request still works.
    client.ping().unwrap();
    // And a well-formed frame with a valid kind still decodes.
    client
        .send_raw(&net::frame::seal(10, kind::PING, &[]))
        .unwrap();
    let (id, resp) = client.recv().unwrap();
    assert_eq!((id, resp), (10, Response::Pong));
    server.shutdown(Duration::from_secs(2));
}
