//! Auto-reconnect: kill the server under a live client, restart it on
//! the same port, and prove the client heals — re-dials with backoff,
//! replays only unanswered requests under their original ids, and
//! returns the same answers a never-dropped connection would. When no
//! server comes back, the failure is the typed
//! [`NetError::ReconnectFailed`], not a raw I/O error.

use ab::{AbConfig, Level};
use bitmap::{AttrRange, BinnedColumn, BinnedTable, RectQuery};
use net::{NetConfig, NetError, NetServer, ReconnectClient, Request, Response};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use svc::{RetryPolicy, Service, SvcConfig};

const ROWS: usize = 300;

fn service() -> Arc<Service> {
    let table = BinnedTable::new(vec![BinnedColumn::new(
        "a",
        (0..ROWS).map(|i| (i % 5) as u32).collect(),
        5,
    )]);
    Arc::new(Service::build(
        &table,
        &AbConfig::new(Level::PerAttribute).with_alpha(8),
        &SvcConfig {
            threads: 2,
            shards: 2,
            ..SvcConfig::default()
        },
    ))
}

fn serve() -> NetServer {
    NetServer::bind("127.0.0.1:0", service(), NetConfig::default()).unwrap()
}

/// Rebinds a server on `addr` — retrying briefly, since the kernel
/// may take a moment to release the port after the old listener drops.
fn serve_at(addr: SocketAddr) -> NetServer {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match NetServer::bind(addr, service(), NetConfig::default()) {
            Ok(s) => return s,
            Err(e) if std::time::Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("could not rebind {addr}: {e}"),
        }
    }
}

fn the_query() -> RectQuery {
    RectQuery::new(vec![AttrRange::new(0, 1, 2)], 0, ROWS - 1)
}

fn patient_policy() -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(5),
        cap: Duration::from_millis(100),
        max_attempts: 20,
        max_elapsed: Duration::from_secs(10),
    }
}

#[test]
fn client_heals_across_a_server_restart() {
    let server = serve();
    let addr = server.local_addr();
    let mut client = ReconnectClient::connect_with(addr, patient_policy(), 42).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let before = client.query_rect(&the_query(), 0).unwrap();
    assert!(!before.is_empty());
    assert_eq!(client.reconnects(), 0);

    // Kill and resurrect the server; the established connection is
    // now dead and the next call must heal transparently.
    server.shutdown(Duration::from_secs(1));
    let server2 = serve_at(addr);
    let after = client.query_rect(&the_query(), 0).unwrap();
    assert_eq!(before, after, "same dataset, same answer after healing");
    assert!(
        client.reconnects() >= 1,
        "healing must count as a reconnect"
    );
    // The healed connection is a normal connection.
    client.ping().unwrap();
    server2.shutdown(Duration::from_secs(1));
}

#[test]
fn unanswered_pipelined_requests_replay_with_their_ids() {
    let server = serve();
    let addr = server.local_addr();
    let mut client = ReconnectClient::connect_with(addr, patient_policy(), 7).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Warm the connection so the drop is observed mid-stream.
    client.ping().unwrap();

    server.shutdown(Duration::from_secs(1));
    let server2 = serve_at(addr);

    // Pipeline three requests into (possibly) a dead socket, then
    // collect: every one must be answered under the id send() issued.
    let ids = [
        client.send(&Request::Ping).unwrap(),
        client
            .send(&Request::Rect {
                deadline_ms: 0,
                query: the_query(),
            })
            .unwrap(),
        client.send(&Request::Ping).unwrap(),
    ];
    let mut seen = Vec::new();
    for _ in 0..ids.len() {
        let (id, resp) = client.recv().unwrap();
        assert!(
            !matches!(resp, Response::Error { .. }),
            "healthy server answered an error for id {id}"
        );
        seen.push(id);
    }
    seen.sort_unstable();
    let mut want = ids.to_vec();
    want.sort_unstable();
    assert_eq!(seen, want, "all pipelined ids answered exactly once");
    server2.shutdown(Duration::from_secs(1));
}

#[test]
fn exhausted_redial_budget_is_a_typed_error() {
    let server = serve();
    let addr = server.local_addr();
    let mut client = ReconnectClient::connect_with(
        addr,
        RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
            max_attempts: 3,
            max_elapsed: Duration::from_millis(500),
        },
        1,
    )
    .unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    client.ping().unwrap();

    // Take the server away for good: the client must give up with the
    // typed reconnect error, not a panic or a bare io::Error.
    server.shutdown(Duration::from_secs(1));
    match client.ping() {
        Err(NetError::ReconnectFailed { attempts }) => {
            assert!(attempts >= 1, "attempts recorded: {attempts}");
        }
        other => panic!("expected ReconnectFailed, got {other:?}"),
    }
}
