//! Malformed-input hardening: a sweep of corrupted, truncated, and
//! lying frames against a live server. The contract under attack
//! traffic is narrow — the server never panics, answers every
//! decodable-but-wrong frame with a typed error frame, hard-closes
//! only on framing damage it cannot resynchronise from, and keeps
//! serving healthy connections throughout.

use ab::{AbConfig, Level};
use bitmap::{AttrRange, BinnedColumn, BinnedTable, RectQuery};
use net::frame::{kind, seal, Request, Response, HEADER_LEN};
use net::{Client, ErrorCode, NetConfig, NetServer};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use svc::{Service, SvcConfig};

fn service() -> Arc<Service> {
    let table = BinnedTable::new(vec![BinnedColumn::new(
        "a",
        (0..200).map(|i| (i % 5) as u32).collect(),
        5,
    )]);
    Arc::new(Service::build(
        &table,
        &AbConfig::new(Level::PerAttribute).with_alpha(8),
        &SvcConfig {
            threads: 2,
            shards: 2,
            ..SvcConfig::default()
        },
    ))
}

fn rect_frame(id: u64) -> Vec<u8> {
    net::frame::encode_request(
        id,
        &Request::Rect {
            deadline_ms: 0,
            query: RectQuery::new(vec![AttrRange::new(0, 1, 3)], 0, 199),
        },
    )
}

/// The server must still answer a fresh, healthy connection — the
/// whole point of hardening is that attack traffic can't take the
/// listener down.
fn assert_still_serving(server: &NetServer) {
    let mut probe = Client::connect(server.local_addr()).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    probe.ping().unwrap();
    let rows = probe
        .query_rect(&RectQuery::new(vec![AttrRange::new(0, 0, 4)], 0, 199), 0)
        .unwrap();
    assert_eq!(rows.len(), 200);
}

/// Sends raw bytes, half-closes, and collects whatever the server
/// says before the connection dies. Returns decoded responses.
fn fire(server: &NetServer, bytes: &[u8]) -> Vec<(u64, Response)> {
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    c.send_raw(bytes).unwrap();
    c.close_write().unwrap();
    let mut got = Vec::new();
    while let Ok(pair) = c.recv() {
        got.push(pair);
    }
    got
}

#[test]
fn bad_magic_gets_error_frame_then_close() {
    let server = NetServer::bind("127.0.0.1:0", service(), NetConfig::default()).unwrap();
    let mut frame = rect_frame(1);
    frame[0] = 0x00; // clobber magic
    let got = fire(&server, &frame);
    assert_eq!(got.len(), 1, "exactly one error frame, then close");
    match &got[0] {
        (
            0,
            Response::Error {
                code, retryable, ..
            },
        ) => {
            // Framing is broken; request id is unknowable, so the
            // error frame carries id 0 and is not retryable as-is.
            assert_eq!(*code, ErrorCode::BadMagic);
            assert!(!retryable);
        }
        other => panic!("expected bad_magic frame, got {other:?}"),
    }
    assert_still_serving(&server);
    server.shutdown(Duration::from_secs(2));
}

#[test]
fn bad_version_gets_error_frame_then_close() {
    let server = NetServer::bind("127.0.0.1:0", service(), NetConfig::default()).unwrap();
    let mut frame = rect_frame(2);
    frame[2] = 99; // unsupported protocol version
    let got = fire(&server, &frame);
    assert_eq!(got.len(), 1);
    assert!(matches!(
        got[0],
        (
            0,
            Response::Error {
                code: ErrorCode::BadVersion,
                ..
            }
        )
    ));
    assert_still_serving(&server);
    server.shutdown(Duration::from_secs(2));
}

#[test]
fn oversized_length_gets_error_frame_then_close() {
    let server = NetServer::bind("127.0.0.1:0", service(), NetConfig::default()).unwrap();
    // A header claiming a 256 MiB payload: the server must refuse to
    // allocate and hard-close instead of buffering toward OOM.
    let mut frame = rect_frame(3);
    frame[12..16].copy_from_slice(&(256u32 << 20).to_le_bytes());
    let got = fire(&server, &frame[..HEADER_LEN]);
    assert_eq!(got.len(), 1);
    assert!(matches!(
        got[0],
        (
            0,
            Response::Error {
                code: ErrorCode::Oversized,
                ..
            }
        )
    ));
    assert_still_serving(&server);
    server.shutdown(Duration::from_secs(2));
}

#[test]
fn crc_mismatch_gets_error_frame_then_close() {
    let server = NetServer::bind("127.0.0.1:0", service(), NetConfig::default()).unwrap();
    let mut frame = rect_frame(4);
    let mid = HEADER_LEN + 2;
    frame[mid] ^= 0x40; // flip one payload bit; CRC must catch it
    let got = fire(&server, &frame);
    assert_eq!(got.len(), 1);
    assert!(matches!(
        got[0],
        (
            0,
            Response::Error {
                code: ErrorCode::BadCrc,
                ..
            }
        )
    ));
    assert_still_serving(&server);
    server.shutdown(Duration::from_secs(2));
}

#[test]
fn truncated_frame_closes_cleanly_without_response() {
    let server = NetServer::bind("127.0.0.1:0", service(), NetConfig::default()).unwrap();
    let frame = rect_frame(5);
    // Cut mid-payload: the reader keeps waiting for the rest, the
    // client half-closes, and the server must just close — no panic,
    // no garbage frame.
    let got = fire(&server, &frame[..frame.len() - 7]);
    assert!(got.is_empty(), "truncated frame must not produce output");
    assert_still_serving(&server);
    server.shutdown(Duration::from_secs(2));
}

#[test]
fn lying_payload_counts_get_typed_malformed_frame() {
    let server = NetServer::bind("127.0.0.1:0", service(), NetConfig::default()).unwrap();
    // A rect request whose range count claims more entries than the
    // payload holds. The frame itself (CRC, length) is valid, so the
    // connection survives with a typed error carrying the real id.
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u32.to_le_bytes()); // deadline
    payload.extend_from_slice(&200u64.to_le_bytes()); // row_lo
    payload.extend_from_slice(&10u64.to_le_bytes()); // row_hi (also nonsense)
    payload.extend_from_slice(&40u16.to_le_bytes()); // claims 40 ranges...
    payload.extend_from_slice(&[0u8; 12]); // ...ships one
    let got = fire(&server, &seal(6, kind::RECT, &payload));
    assert_eq!(got.len(), 1);
    match &got[0] {
        (6, Response::Error { code, .. }) => assert_eq!(*code, ErrorCode::Malformed),
        other => panic!("expected malformed frame for id 6, got {other:?}"),
    }
    assert_still_serving(&server);
    server.shutdown(Duration::from_secs(2));
}

#[test]
fn empty_payload_for_rect_is_malformed_not_panic() {
    let server = NetServer::bind("127.0.0.1:0", service(), NetConfig::default()).unwrap();
    let got = fire(&server, &seal(7, kind::RECT, &[]));
    assert_eq!(got.len(), 1);
    assert!(matches!(
        got[0],
        (
            7,
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        )
    ));
    assert_still_serving(&server);
    server.shutdown(Duration::from_secs(2));
}

#[test]
fn random_garbage_never_panics_server() {
    let server = NetServer::bind("127.0.0.1:0", service(), NetConfig::default()).unwrap();
    // Deterministic pseudo-random garbage at several lengths. Any
    // outcome except a server panic is acceptable; afterwards the
    // server must still answer correctly.
    for (i, len) in [1usize, 7, 16, 64, 1024].into_iter().enumerate() {
        let bytes: Vec<u8> = (0..len)
            .map(|j| (hashkit::splitmix64((i * 131 + j) as u64) & 0xFF) as u8)
            .collect();
        let _ = fire(&server, &bytes);
    }
    assert_still_serving(&server);
    server.shutdown(Duration::from_secs(2));
}

#[test]
fn single_byte_corruption_sweep_over_a_real_frame() {
    let server = NetServer::bind("127.0.0.1:0", service(), NetConfig::default()).unwrap();
    let clean = rect_frame(8);
    let baseline = {
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.query_rect(&RectQuery::new(vec![AttrRange::new(0, 1, 3)], 0, 199), 0)
            .unwrap()
    };
    // Flip one byte at a time across the whole frame (stride 3 keeps
    // the sweep fast while still covering header, payload, and CRC).
    for pos in (0..clean.len()).step_by(3) {
        let mut frame = clean.clone();
        frame[pos] ^= 0xA5;
        for (_, resp) in fire(&server, &frame) {
            match resp {
                // The only acceptable success is the *correct* answer
                // (possible only if the flip landed somewhere the
                // decoder rejects... CRC makes even that unreachable,
                // but the invariant we defend is no *wrong* answer).
                Response::Rect { ref rows, .. } => {
                    assert_eq!(rows, &baseline, "corrupted frame produced a wrong answer");
                }
                Response::Error { .. } => {}
                other => panic!("unexpected response to corrupted frame: {other:?}"),
            }
        }
    }
    assert_still_serving(&server);
    server.shutdown(Duration::from_secs(2));
}

#[test]
fn slow_loris_byte_at_a_time_still_answers() {
    let server = NetServer::bind("127.0.0.1:0", service(), NetConfig::default()).unwrap();
    let frame = rect_frame(9);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for b in &frame {
        stream.write_all(std::slice::from_ref(b)).unwrap();
        stream.flush().unwrap();
    }
    // Reuse the frame reader via a Client over the same socket? The
    // Client owns its stream, so decode manually instead.
    let mut reader = net::FrameReader::new();
    let mut buf = [0u8; 4096];
    use std::io::Read;
    loop {
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "server closed before answering");
        reader.push(&buf[..n]);
        if let Some(f) = reader.next_frame().unwrap() {
            assert_eq!(f.request_id, 9);
            let resp = net::frame::decode_response(&f).unwrap();
            assert!(matches!(resp, Response::Rect { .. }));
            break;
        }
    }
    server.shutdown(Duration::from_secs(2));
}
