//! Checks that the closed-form pieces of the reproduction match the
//! paper's published numbers exactly — these are the values a reviewer
//! can diff against the PDF.

use ab::{ab_size_bytes, fp_rate, optimal_k};

/// Table 4: AB size (bytes) as a function of α, one AB per data set.
#[test]
fn table4_sizes_match_paper() {
    // Uniform: s = 200,000 set bits.
    assert_eq!(ab_size_bytes(200_000, 2), 65_536);
    assert_eq!(ab_size_bytes(200_000, 4), 131_072);
    assert_eq!(ab_size_bytes(200_000, 8), 262_144);
    assert_eq!(ab_size_bytes(200_000, 16), 524_288);
    // Landsat: s = 16,527,900.
    assert_eq!(ab_size_bytes(16_527_900, 2), 4_194_304);
    assert_eq!(ab_size_bytes(16_527_900, 4), 8_388_608);
    assert_eq!(ab_size_bytes(16_527_900, 8), 16_777_216);
    assert_eq!(ab_size_bytes(16_527_900, 16), 33_554_432);
    // HEP: s = 13,042,572 — the paper prints the same power-of-two
    // sizes as Landsat ("note that this is also the size we obtain for
    // HEP data, since we are restricting ourselves to powers of 2").
    assert_eq!(ab_size_bytes(13_042_572, 2), 4_194_304);
    assert_eq!(ab_size_bytes(13_042_572, 16), 33_554_432);
}

/// Table 5: AB size per attribute (single AB and all ABs).
#[test]
fn table5_sizes_match_paper() {
    // Uniform: N = 100,000, d = 2.
    assert_eq!(ab_size_bytes(100_000, 2), 32_768);
    assert_eq!(ab_size_bytes(100_000, 2) * 2, 65_536);
    assert_eq!(ab_size_bytes(100_000, 16), 262_144);
    assert_eq!(ab_size_bytes(100_000, 16) * 2, 524_288);
    // Landsat: N = 275,465, d = 60.
    assert_eq!(ab_size_bytes(275_465, 2), 131_072);
    assert_eq!(ab_size_bytes(275_465, 2) * 60, 7_864_320);
    assert_eq!(ab_size_bytes(275_465, 8), 524_288);
    assert_eq!(ab_size_bytes(275_465, 8) * 60, 31_457_280);
    assert_eq!(ab_size_bytes(275_465, 16) * 60, 62_914_560);
    // HEP: N = 2,173,762, d = 6.
    assert_eq!(ab_size_bytes(2_173_762, 2), 1_048_576);
    assert_eq!(ab_size_bytes(2_173_762, 2) * 6, 6_291_456);
    assert_eq!(ab_size_bytes(2_173_762, 16) * 6, 50_331_648);
}

/// §6.1's worked example: "the value for Landsat data for α = 4 … the
/// lowest power of 2 that is greater or equal to sα is 67,108,864 in
/// bits, and 8,388,608 in bytes."
#[test]
fn section61_worked_example() {
    assert_eq!(ab::ab_bits(16_527_900, 4), 67_108_864);
    assert_eq!(ab_size_bytes(16_527_900, 4), 8_388_608);
}

/// Figure 8/9 shape: FP falls with α; FP is U-shaped in k with the
/// minimum at α·ln2.
#[test]
fn fp_theory_shapes() {
    for k in [2usize, 4, 8] {
        assert!(fp_rate(k, 4.0) > fp_rate(k, 8.0));
        assert!(fp_rate(k, 8.0) > fp_rate(k, 16.0));
    }
    for alpha in [4.0f64, 8.0, 16.0] {
        let k = optimal_k(alpha);
        let expect = (alpha * std::f64::consts::LN_2).round() as isize;
        assert!((k as isize - expect).abs() <= 1, "alpha={alpha}: k={k}");
    }
}

/// The paper's privacy claim (contribution 6) rests on the AB alone
/// answering queries: deserialize an index with no data present and
/// query it.
#[test]
fn ab_answers_without_database_access() {
    let bytes = {
        let ds = datagen::small_uniform(2000, 2, 10, 31);
        let idx = ab::AbIndex::build(
            &ds.binned,
            &ab::AbConfig::new(ab::Level::PerAttribute).with_alpha(16),
        );
        ab::to_bytes(&idx)
        // ds and idx drop here: only the serialized AB crosses the
        // trust boundary.
    };
    let remote = ab::from_bytes(&bytes).unwrap();
    let q = bitmap::RectQuery::new(vec![bitmap::AttrRange::new(0, 0, 4)], 100, 400);
    let rows = remote.execute_rect(&q);
    // ~50% of 301 rows match attribute 0 in bins 0..=4.
    assert!(rows.len() > 100 && rows.len() < 250, "{}", rows.len());
}

/// Measured FP rate tracks (1 − e^{−k/α})^k within statistical noise
/// across a spread of (α, k) settings — the §4.1 model validation.
#[test]
fn measured_fp_tracks_theory() {
    use hashkit::{CellMapper, HashFamily};
    for &(alpha, k) in &[(4u64, 3usize), (8, 6), (16, 8)] {
        let s = 4000u64;
        let n = ab::ab_bits(s, alpha);
        let mut filter = ab::ApproximateBitmap::new(
            n,
            k,
            HashFamily::default_independent(),
            CellMapper::RowOnly,
        );
        for row in 0..s {
            filter.insert(row, 0);
        }
        let probes = 30_000u64;
        let fp = (s..s + probes).filter(|&r| filter.contains(r, 0)).count();
        let measured = fp as f64 / probes as f64;
        let theory = fp_rate(k, n as f64 / s as f64);
        assert!(
            measured < theory * 1.8 + 0.004,
            "alpha={alpha} k={k}: measured {measured:.5} vs theory {theory:.5}"
        );
    }
}

/// §4.3 probe accounting: the k hash probes per cell short-circuit on
/// the first zero bit, so across a query `cells_probed <= bits_read <=
/// cells_probed x k` — the bound behind the O(c) direct-access claim.
#[test]
fn bits_read_bounded_by_cells_probed_times_k() {
    let ds = datagen::small_uniform(3000, 3, 12, 47);
    for level in [
        ab::Level::PerDataset,
        ab::Level::PerAttribute,
        ab::Level::PerColumn,
    ] {
        let idx = ab::AbIndex::build(&ds.binned, &ab::AbConfig::new(level).with_alpha(8));
        let k = idx.max_k();
        let params = datagen::QueryGenParams::paper_default(&ds.binned, 300, 5);
        for q in datagen::generate(&ds.binned, &params) {
            let (_, stats) = idx.execute_rect_with_stats(&q);
            assert!(
                stats.bits_read >= stats.cells_probed,
                "{level:?}: bits_read {} < cells_probed {}",
                stats.bits_read,
                stats.cells_probed
            );
            assert!(
                stats.bits_read <= stats.cells_probed * k,
                "{level:?}: bits_read {} > cells_probed {} x k {k}",
                stats.bits_read,
                stats.cells_probed
            );
        }
    }
}
