//! Cross-system consistency: every index representation in the
//! workspace (verbatim, WAH, BBC, AB at all three levels) must agree
//! on query semantics — exactly for the lossless codecs, superset-with-
//! full-recall for the AB.

use ab::{AbConfig, AbIndex, Level};
use bitmap::{AttrRange, BitVec, BitmapIndex, Encoding, RectQuery};
use datagen::small_uniform;
use wah::{BbcBitmap, WahBitmap, WahIndex};

#[test]
fn wah_bbc_verbatim_agree_on_every_bin() {
    let ds = small_uniform(4000, 3, 12, 21);
    let exact = BitmapIndex::build(&ds.binned, Encoding::Equality);
    for attr in exact.attributes() {
        for bv in &attr.bitmaps {
            let wah = WahBitmap::from_bitvec(bv);
            let bbc = BbcBitmap::from_bitvec(bv);
            assert_eq!(wah.to_bitvec(), *bv);
            assert_eq!(bbc.to_bitvec(), *bv);
            assert_eq!(wah.count_ones(), bv.count_ones());
            assert_eq!(bbc.count_ones(), bv.count_ones());
        }
    }
}

#[test]
fn wah_index_matches_exact_on_random_queries() {
    let ds = small_uniform(4000, 3, 12, 22);
    let exact = BitmapIndex::build(&ds.binned, Encoding::Equality);
    let wah = WahIndex::build(&ds.binned);
    for seed in 0..30u64 {
        let a = (seed % 3) as usize;
        let lo = (seed % 12) as u32;
        let hi = (lo + seed as u32 % 3).min(11);
        let row_lo = (seed as usize * 97) % 3000;
        let q = RectQuery::new(vec![AttrRange::new(a, lo, hi)], row_lo, 3999);
        assert_eq!(
            wah.evaluate_rows(&q),
            exact.evaluate_rows(&q),
            "seed {seed}"
        );
    }
}

#[test]
fn all_ab_levels_cover_exact_answers() {
    let ds = small_uniform(3000, 2, 10, 23);
    let exact = BitmapIndex::build(&ds.binned, Encoding::Equality);
    let q = RectQuery::new(
        vec![AttrRange::new(0, 2, 4), AttrRange::new(1, 5, 8)],
        250,
        2750,
    );
    let want = exact.evaluate_rows(&q);
    for level in [Level::PerDataset, Level::PerAttribute, Level::PerColumn] {
        let idx = AbIndex::build(&ds.binned, &AbConfig::new(level).with_alpha(4));
        let approx = idx.execute_rect(&q);
        for r in &want {
            assert!(approx.contains(r), "{level} missed row {r}");
        }
    }
}

#[test]
fn encodings_and_wah_compose() {
    // Range-encoded exact index results, re-compressed through WAH,
    // must round back identically — checks the codec against a second
    // producer of bitmaps.
    let ds = small_uniform(2500, 2, 9, 24);
    let range_idx = BitmapIndex::build(&ds.binned, Encoding::Range);
    for lo in 0..9u32 {
        for hi in lo..9u32 {
            let bv = range_idx.attribute(0).range(lo, hi);
            let wah = WahBitmap::from_bitvec(&bv);
            assert_eq!(wah.to_bitvec(), bv, "[{lo},{hi}]");
        }
    }
}

#[test]
fn wah_compressed_ops_match_verbatim_plan() {
    // The OR-then-AND query plan computed two ways: compressed vs
    // verbatim.
    let ds = small_uniform(3000, 2, 10, 25);
    let exact = BitmapIndex::build(&ds.binned, Encoding::Equality);
    let wah = WahIndex::build(&ds.binned);

    let a_bins = &exact.attribute(0).bitmaps;
    let b_bins = &exact.attribute(1).bitmaps;
    let verbatim = a_bins[2].or(&a_bins[3]).and(&b_bins[7].or(&b_bins[8]));

    let wa = &wah.attributes()[0].bitmaps;
    let wb = &wah.attributes()[1].bitmaps;
    let compressed = wa[2].or(&wa[3]).and(&wb[7].or(&wb[8]));
    assert_eq!(compressed.to_bitvec(), verbatim);
}

#[test]
fn counting_ab_freeze_equals_direct_build() {
    // Building via the counting filter and freezing must answer like a
    // directly-built AB with identical parameters.
    use ab::CountingAb;
    use hashkit::{CellMapper, HashFamily};
    let n = 1u64 << 14;
    let family = HashFamily::default_independent();
    let mapper = CellMapper::for_columns(10);

    let mut counting = CountingAb::new(n, 4, family.clone(), mapper);
    let mut direct = ab::ApproximateBitmap::new(n, 4, family, mapper);
    for row in 0..2000u64 {
        counting.insert(row, row % 10);
        direct.insert(row, row % 10);
    }
    let frozen = counting.freeze();
    for row in 0..4000u64 {
        assert_eq!(
            frozen.contains(row, row % 10),
            direct.contains(row, row % 10),
            "row {row}"
        );
    }
}

#[test]
fn row_masks_compress_small() {
    // The §3.3 auxiliary row-range bitmap stays tiny under WAH no
    // matter the span — the reason the masking step is cheap.
    for (lo, hi) in [(0usize, 99), (50_000, 50_100), (10, 99_990)] {
        let mask = WahBitmap::from_bitvec(&BitVec::from_ones(100_000, lo..=hi));
        assert!(
            mask.num_words() <= 7,
            "span {lo}..={hi}: {} words",
            mask.num_words()
        );
    }
}
