//! Edge cases and failure injection across the stack: degenerate
//! shapes, hostile values, and boundary sizes that unit tests of the
//! happy path miss.

use ab::{AbConfig, AbIndex, Level};
use bitmap::{
    AttrRange, BinnedColumn, BinnedTable, BitVec, BitmapIndex, Column, Encoding, EquiDepth,
    EquiWidth, RectQuery, Table,
};
use wah::{BbcBitmap, EwahBitmap, WahBitmap};

#[test]
fn single_row_table() {
    let t = BinnedTable::new(vec![BinnedColumn::new("x", vec![0], 1)]);
    for level in [Level::PerDataset, Level::PerAttribute, Level::PerColumn] {
        let idx = AbIndex::build(&t, &AbConfig::new(level).with_alpha(2));
        assert!(idx.test_cell(0, 0, 0), "{level}");
        let q = RectQuery::new(vec![AttrRange::new(0, 0, 0)], 0, 0);
        assert_eq!(idx.execute_rect(&q), vec![0]);
    }
}

#[test]
fn cardinality_one_everywhere() {
    let t = BinnedTable::new(vec![
        BinnedColumn::new("a", vec![0; 50], 1),
        BinnedColumn::new("b", vec![0; 50], 1),
    ]);
    let exact = BitmapIndex::build(&t, Encoding::Equality);
    let wah = wah::WahIndex::build(&t);
    let idx = AbIndex::build(&t, &AbConfig::new(Level::PerAttribute).with_alpha(4));
    let q = RectQuery::new(
        vec![AttrRange::new(0, 0, 0), AttrRange::new(1, 0, 0)],
        10,
        20,
    );
    let want: Vec<usize> = (10..=20).collect();
    assert_eq!(exact.evaluate_rows(&q), want);
    assert_eq!(wah.evaluate_rows(&q), want);
    assert_eq!(idx.execute_rect(&q), want); // no false negatives possible
}

#[test]
fn nan_and_infinite_values_bin_safely() {
    let col = Column::new(
        "weird",
        vec![
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            1.0,
            f64::NAN,
        ],
    );
    let t = Table::new(vec![col]);
    for bins in [1u32, 2, 4] {
        let ew = BinnedTable::from_table(&t, &EquiWidth::new(bins));
        let ed = BinnedTable::from_table(&t, &EquiDepth::new(bins));
        for bt in [ew, ed] {
            assert_eq!(bt.num_rows(), 6);
            assert!(bt.column(0).bins.iter().all(|&b| b < bins));
            // The whole stack still builds and answers.
            let idx = AbIndex::build(&bt, &AbConfig::new(Level::PerAttribute).with_alpha(4));
            for (row, &bin) in bt.column(0).bins.iter().enumerate() {
                assert!(idx.test_cell(row, 0, bin));
            }
        }
    }
}

#[test]
fn codecs_handle_tiny_and_empty_bitmaps() {
    for len in [0usize, 1, 2, 7, 8, 9, 31, 32, 33, 63, 64, 65] {
        let patterns: Vec<BitVec> = vec![
            BitVec::zeros(len),
            BitVec::ones(len),
            BitVec::from_ones(len, (0..len).step_by(2)),
        ];
        for bv in patterns {
            assert_eq!(WahBitmap::from_bitvec(&bv).to_bitvec(), bv, "wah len {len}");
            assert_eq!(BbcBitmap::from_bitvec(&bv).to_bitvec(), bv, "bbc len {len}");
            assert_eq!(
                EwahBitmap::from_bitvec(&bv).to_bitvec(),
                bv,
                "ewah len {len}"
            );
        }
    }
}

#[test]
fn maximum_bin_ids_and_wide_shifts() {
    // 64 attributes of cardinality 256 → global column ids need 14
    // bits; rows up to 2^20 exercise wide shifted keys.
    let rows = 200usize;
    let cols: Vec<BinnedColumn> = (0..64)
        .map(|a| {
            BinnedColumn::new(
                format!("a{a}"),
                (0..rows).map(|i| ((i * 31 + a * 7) % 256) as u32).collect(),
                256,
            )
        })
        .collect();
    let t = BinnedTable::new(cols);
    let idx = AbIndex::build(&t, &AbConfig::new(Level::PerDataset).with_alpha(4));
    for a in [0usize, 31, 63] {
        for row in [0usize, 99, 199] {
            let bin = t.column(a).bins[row];
            assert!(idx.test_cell(row, a, bin));
        }
    }
}

#[test]
fn zero_selectivity_query_returns_empty_or_fp_only() {
    // A query over a bin no row occupies: exact answer empty; the AB
    // may return only false positives, and pruning removes them all.
    let bins: Vec<u32> = (0..1000).map(|i| (i % 5) as u32).collect(); // bins 0..4 of 6
    let t = BinnedTable::new(vec![BinnedColumn::new("x", bins, 6)]);
    let exact = BitmapIndex::build(&t, Encoding::Equality);
    let idx = AbIndex::build(&t, &AbConfig::new(Level::PerColumn).with_alpha(2));
    let q = RectQuery::new(vec![AttrRange::new(0, 5, 5)], 0, 999);
    assert!(exact.evaluate_rows(&q).is_empty());
    let approx = idx.execute_rect(&q);
    assert!(ab::prune_false_positives(&exact, &q, &approx).is_empty());
}

#[test]
fn serialization_of_extreme_shapes() {
    // Tiny AB and many-AB (per-column, high cardinality) both survive.
    let t = BinnedTable::new(vec![BinnedColumn::new(
        "x",
        (0..500u32).map(|i| i % 100).collect(),
        100,
    )]);
    for level in [Level::PerDataset, Level::PerColumn] {
        let idx = AbIndex::build(&t, &AbConfig::new(level).with_alpha(2));
        let back = ab::from_bytes(&ab::to_bytes(&idx)).unwrap();
        assert_eq!(back.abs().len(), idx.abs().len());
        for row in (0..500).step_by(83) {
            let bin = (row % 100) as u32;
            assert_eq!(back.test_cell(row, 0, bin), idx.test_cell(row, 0, bin));
        }
    }
}

#[test]
fn wah_fill_overflow_boundary() {
    // A bitmap long enough that the zero fill approaches the 2^30-group
    // fill-counter limit would need 33 Gbit; instead test the splitting
    // logic via the builder directly plus a large-but-practical bitmap.
    let len = 31 * 1_000_000; // one million groups in a single fill
    let bv = BitVec::from_ones(len, [len - 1]);
    let w = WahBitmap::from_bitvec(&bv);
    assert!(w.num_words() <= 3);
    assert_eq!(w.iter_ones().collect::<Vec<_>>(), vec![len - 1]);
}

#[test]
fn equidepth_more_bins_than_rows() {
    let col = Column::new("x", vec![3.0, 1.0, 2.0]);
    let b = bitmap::Binner::bin(&EquiDepth::new(10), &col);
    assert_eq!(b.cardinality, 10);
    assert!(b.bins.iter().all(|&x| x < 10));
    // Order preserved: smallest value in lowest bin.
    assert!(b.bins[1] < b.bins[0]);
}
