//! End-to-end integration: data generation → binning → exact / WAH /
//! AB indexes → sampled queries → precision and pruning, on reduced-
//! scale versions of all three paper data sets.

use ab::{AbConfig, AbIndex, Level, PrecisionStats};
use bitmap::{BitmapIndex, Encoding};
use datagen::{Dataset, QueryGenParams};
use wah::WahIndex;

fn check_dataset(ds: Dataset, level: Level, alpha: u64) {
    let exact = BitmapIndex::build(&ds.binned, Encoding::Equality);
    let wah = WahIndex::build(&ds.binned);
    let ab_idx = AbIndex::build(&ds.binned, &AbConfig::new(level).with_alpha(alpha));

    let params = QueryGenParams::paper_default(&ds.binned, ds.rows() / 20, 17);
    let queries = datagen::generate(&ds.binned, &params);

    let mut precision_sum = 0.0;
    for q in queries.iter().take(30) {
        let want = exact.evaluate_rows(q);
        assert!(!want.is_empty(), "query generator must anchor a match");

        // WAH agrees with the exact index bit for bit.
        assert_eq!(wah.evaluate_rows(q), want, "WAH diverged from exact");

        // AB: full recall, bounded imprecision.
        let approx = ab_idx.execute_rect(q);
        let stats = PrecisionStats::compare(&approx, &want);
        assert_eq!(stats.false_negatives, 0, "AB false negative on {}", ds.name);
        precision_sum += stats.precision();

        // Second-step pruning restores exactness.
        let pruned = ab::prune_false_positives(&exact, q, &approx);
        assert_eq!(pruned, want, "pruning failed on {}", ds.name);
    }
    let mean = precision_sum / 30.0;
    assert!(
        mean > 0.5,
        "{} at alpha={alpha}, {level}: mean precision {mean:.3} too low",
        ds.name
    );
}

#[test]
fn uniform_per_column_pipeline() {
    check_dataset(datagen::uniform_dataset(0.01, 1), Level::PerColumn, 16);
}

#[test]
fn uniform_per_dataset_pipeline() {
    check_dataset(datagen::uniform_dataset(0.01, 2), Level::PerDataset, 16);
}

#[test]
fn landsat_per_dataset_pipeline() {
    check_dataset(datagen::landsat_like(0.005, 3), Level::PerDataset, 8);
}

#[test]
fn hep_per_attribute_pipeline() {
    check_dataset(datagen::hep_like(0.002, 4), Level::PerAttribute, 8);
}

#[test]
fn precision_improves_with_alpha_across_stack() {
    let ds = datagen::uniform_dataset(0.01, 5);
    let exact = BitmapIndex::build(&ds.binned, Encoding::Equality);
    let params = QueryGenParams::paper_default(&ds.binned, ds.rows() / 10, 6);
    let queries = datagen::generate(&ds.binned, &params);

    let measure = |alpha: u64| {
        let idx = AbIndex::build(
            &ds.binned,
            &AbConfig::new(Level::PerAttribute).with_alpha(alpha),
        );
        let mut total = 0.0;
        for q in queries.iter().take(20) {
            let stats = PrecisionStats::compare(&idx.execute_rect(q), &exact.evaluate_rows(q));
            assert_eq!(stats.false_negatives, 0);
            total += stats.precision();
        }
        total / 20.0
    };
    let (p2, p8, p32) = (measure(2), measure(8), measure(32));
    assert!(p2 <= p8 + 0.05 && p8 <= p32 + 0.05, "{p2} {p8} {p32}");
    assert!(p32 > 0.95, "alpha=32 should be nearly exact, got {p32}");
}

#[test]
fn ab_probe_count_linear_wah_flat() {
    // The Figure 14 cost model, asserted on operation counts instead
    // of wall time: AB probes grow linearly with the rows queried,
    // while the WAH plan's input size (compressed words) is constant.
    let ds = datagen::uniform_dataset(0.02, 7);
    let ab_idx = AbIndex::build(&ds.binned, &AbConfig::new(Level::PerColumn).with_alpha(16));
    let mut probes = Vec::new();
    for rows in [100usize, 200, 400] {
        let params = QueryGenParams::paper_default(&ds.binned, rows, 8);
        let queries = datagen::generate(&ds.binned, &params);
        let total: usize = queries
            .iter()
            .take(20)
            .map(|q| ab_idx.execute_rect_with_stats(q).1.cells_probed)
            .sum();
        probes.push(total);
    }
    // Doubling the rows roughly doubles the probes (within 40%).
    let r1 = probes[1] as f64 / probes[0] as f64;
    let r2 = probes[2] as f64 / probes[1] as f64;
    assert!((1.6..=2.4).contains(&r1), "probe growth {r1}");
    assert!((1.6..=2.4).contains(&r2), "probe growth {r2}");
}

#[test]
fn serialized_index_queries_identically() {
    let ds = datagen::hep_like(0.001, 9);
    let idx = AbIndex::build(&ds.binned, &AbConfig::new(Level::PerDataset).with_alpha(8));
    let restored = ab::from_bytes(&ab::to_bytes(&idx)).expect("roundtrip");
    let params = QueryGenParams::paper_default(&ds.binned, 200, 10);
    for q in datagen::generate(&ds.binned, &params).iter().take(10) {
        assert_eq!(idx.execute_rect(q), restored.execute_rect(q));
    }
}
