//! Integration: the cost-based planner calibrated against the real
//! WAH index routes queries to the engine that actually wins.

use ab::planner::{calibrate, plan, wah_like::WahLike, Engine};
use ab::{AbConfig, AbIndex, Level};
use bitmap::{AttrRange, RectQuery};
use datagen::small_uniform;
use wah::WahIndex;

fn setup() -> (datagen::Dataset, AbIndex, WahIndex) {
    let ds = small_uniform(30_000, 2, 20, 5);
    let ab = AbIndex::build(
        &ds.binned,
        &AbConfig::new(Level::PerAttribute).with_alpha(8),
    );
    let wah = WahIndex::build(&ds.binned);
    (ds, ab, wah)
}

#[test]
fn calibrated_model_orders_engines_sensibly() {
    let (ds, ab, wah) = setup();
    let n = ds.rows();
    let samples: Vec<RectQuery> = (0..6)
        .map(|i| {
            RectQuery::new(
                vec![AttrRange::new(0, 0, 3), AttrRange::new(1, 4, 7)],
                i * 1000,
                i * 1000 + 999,
            )
        })
        .collect();
    let wah_eval = WahLike::new(|q: &RectQuery| {
        let full = RectQuery::new(q.ranges.clone(), 0, n - 1);
        std::hint::black_box(wah.evaluate(&full));
    });
    let model = calibrate(&ab, &wah_eval, &samples);

    // A 10-row query must route to the AB; a full-table query to WAH.
    let tiny = RectQuery::new(vec![AttrRange::new(0, 0, 3)], 100, 109);
    let huge = RectQuery::new(vec![AttrRange::new(0, 0, 3)], 0, n - 1);
    assert_eq!(plan(&model, &tiny), Engine::Ab);
    assert_eq!(plan(&model, &huge), Engine::Wah);

    // The calibrated crossover lies strictly inside the table.
    let cross = model.crossover_rows(1);
    assert!(cross > 10 && cross < n * 10, "crossover {cross}");
}

#[test]
fn hybrid_execution_is_correct_on_both_paths() {
    let (ds, ab, wah) = setup();
    let n = ds.rows();
    let exact = bitmap::BitmapIndex::build(&ds.binned, bitmap::Encoding::Equality);
    for q in [
        RectQuery::new(vec![AttrRange::new(0, 5, 9)], 200, 260), // AB path
        RectQuery::new(vec![AttrRange::new(0, 5, 9)], 0, n - 1), // WAH path
    ] {
        let want = exact.evaluate_rows(&q);
        // WAH path is exact.
        assert_eq!(wah.evaluate_rows(&q), want);
        // AB path is a superset; prune restores exactness.
        let approx = ab.execute_rect(&q);
        assert_eq!(ab::prune_false_positives(&exact, &q, &approx), want);
    }
}
