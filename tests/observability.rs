//! End-to-end observability checks: the global registry's `ab.query.*`
//! totals agree exactly with the per-query [`ab::QueryStats`] sums, and
//! the exporters emit every registered metric.
//!
//! The registry is process-global, so the counter-delta test below is
//! the only test in this binary that executes AB queries — keeping the
//! deltas attributable under the parallel test runner.

/// `ab.query.*` counters are flushed once per query from the same
/// computed values that fill `QueryStats`, so registry deltas must
/// equal the summed stats exactly (the ISSUE's acceptance check).
#[cfg(not(feature = "obs-off"))]
#[test]
fn registry_matches_summed_query_stats() {
    let ds = datagen::small_uniform(2_000, 2, 10, 77);
    let idx = ab::AbIndex::build(
        &ds.binned,
        &ab::AbConfig::new(ab::Level::PerColumn).with_alpha(16),
    );
    let params = datagen::QueryGenParams::paper_default(&ds.binned, 200, 9);
    let queries = datagen::generate(&ds.binned, &params);

    let probes = obs::global().counter("ab.query.cells_probed");
    let bits = obs::global().counter("ab.query.bits_read");
    let rows = obs::global().counter("ab.query.rows_matched");
    let executed = obs::global().counter("ab.query.executed");
    let before = (probes.get(), bits.get(), rows.get(), executed.get());

    let mut sum = ab::QueryStats::default();
    for q in &queries {
        let (_, stats) = idx.execute_rect_with_stats(q);
        sum.cells_probed += stats.cells_probed;
        sum.bits_read += stats.bits_read;
        sum.rows_matched += stats.rows_matched;
    }

    assert_eq!(probes.get() - before.0, sum.cells_probed as u64);
    assert_eq!(bits.get() - before.1, sum.bits_read as u64);
    assert_eq!(rows.get() - before.2, sum.rows_matched as u64);
    assert_eq!(executed.get() - before.3, queries.len() as u64);

    // The snapshot carries the same totals.
    let snap = obs::global().snapshot();
    assert!(snap.counter("ab.query.cells_probed") >= sum.cells_probed as u64);
}

/// Both exporters cover counters, histograms, and extra keys.
#[test]
fn exporters_cover_registered_metrics() {
    obs::counter!("obs_it.counter").add(3);
    obs::histogram!("obs_it.latency_us").record(1_000);
    {
        let _g = obs::span("obs_it.span_us");
        assert!(obs::active_spans().contains(&"obs_it.span_us"));
    }
    let snap = obs::global().snapshot().with_extra("obs_it.extra", 1.5);

    let json = snap.to_json();
    assert!(json.contains("\"obs_it.counter\""));
    assert!(json.contains("\"obs_it.latency_us\""));
    assert!(json.contains("\"obs_it.extra\""));

    let prom = snap.to_prometheus();
    assert!(prom.contains("obs_it_counter"));
    assert!(prom.contains("obs_it_latency_us_bucket"));
    assert!(prom.contains("le=\"+Inf\""));
}

/// Typed rejection: out-of-range queries return `QueryError` through
/// the `try_` API and the panicking wrapper still says "out of range".
#[test]
fn typed_errors_round_trip() {
    let ds = datagen::small_uniform(500, 2, 10, 3);
    let idx = ab::AbIndex::build(
        &ds.binned,
        &ab::AbConfig::new(ab::Level::PerAttribute).with_alpha(8),
    );
    let bad = bitmap::RectQuery::new(vec![bitmap::AttrRange::new(0, 0, 4)], 0, 5_000);
    match idx.try_execute_rect(&bad) {
        Err(ab::QueryError::RowOutOfRange { row, num_rows }) => {
            assert_eq!((row, num_rows), (5_000, 500));
        }
        other => panic!("expected RowOutOfRange, got {other:?}"),
    }
    let err = idx.try_execute_rect(&bad).unwrap_err();
    assert!(err.to_string().contains("out of range"));
}
