//! Probe-kernel differential tests: the full kernel matrix
//! (scalar × batched × simd) × batch-depth policies (adaptive and
//! forced 8/64/256) against the scalar reference loop.
//!
//! The batched and SIMD kernels (DESIGN.md §13–§14) restructure the
//! Figure 5/7 probe loops for memory-level parallelism but must not
//! change a single observable: rect results must be bit-identical and
//! the `QueryStats` probe accounting (`cells_probed`, `bits_read`,
//! `rows_matched`) must match the scalar reference loop exactly —
//! this is the guard against double-counting `bits_read` and, more
//! importantly, against any probe-sequence divergence that would show
//! up as a false negative.
//!
//! Run with and without `--features prefetch` and `--features simd`;
//! CI's `kernel-smoke` and `simd-smoke` jobs cover all configs (the
//! latter also pins `AB_SIMD=avx2` in a separate process to exercise
//! the narrower gather path on AVX-512 machines).

use ab::{
    AbConfig, AbIndex, BatchRows, Cell, HierConfig, HierLevelSpec, HierMode, HybridConfig,
    HybridMode, KernelKind, KernelOpts, Level,
};
use bitmap::{AttrRange, BinnedTable, RectQuery};
use datagen::small_uniform;
use hashkit::HashFamily;

/// Every non-reference kernel configuration under test: both wave
/// engines crossed with the adaptive policy and fixed depths bracketing
/// it (8 = sub-wave, 64 = classic, 256 = the deep-pipeline maximum).
fn kernel_matrix() -> Vec<KernelOpts> {
    let mut m = Vec::new();
    for kernel in [KernelKind::Batched, KernelKind::Simd] {
        for batch in [
            BatchRows::Adaptive,
            BatchRows::Fixed(8),
            BatchRows::Fixed(64),
            BatchRows::Fixed(256),
        ] {
            m.push(KernelOpts::new(kernel).with_batch_rows(batch));
        }
    }
    m
}

/// The 3 seeded datasets the satellite task asks for: different row
/// counts (off multiples of the 64-row batch), attribute counts, and
/// cardinalities.
fn datasets() -> Vec<BinnedTable> {
    vec![
        small_uniform(1931, 3, 12, 7).binned,
        small_uniform(4096, 2, 8, 99).binned,
        small_uniform(777, 4, 20, 2024).binned,
    ]
}

/// A workload of rect queries exercising every short-circuit shape:
/// multi-range ANDs, single bins, full-table spans, sub-64-row spans,
/// an empty range list, and an empty row interval.
fn queries(table: &BinnedTable) -> Vec<RectQuery> {
    let last = table.num_rows() - 1;
    let card = |a: usize| table.column(a).cardinality;
    let mut qs = vec![
        RectQuery::new(vec![AttrRange::new(0, 0, card(0) / 2)], 0, last),
        RectQuery::new(
            vec![
                AttrRange::new(0, 1, card(0) - 1),
                AttrRange::new(1, 0, card(1) / 3),
            ],
            last / 4,
            3 * last / 4,
        ),
        RectQuery::new(vec![AttrRange::new(1, 2, 2)], 0, last),
        RectQuery::new(vec![AttrRange::new(0, 0, card(0) - 1)], 17, 29),
        RectQuery::new(vec![], 5, last.min(500)),
        RectQuery::new(vec![AttrRange::new(0, 0, 1)], 63, 63),
    ];
    if table.columns().len() > 2 {
        qs.push(RectQuery::new(
            vec![
                AttrRange::new(0, 0, card(0) - 1),
                AttrRange::new(1, 1, 1),
                AttrRange::new(2, 0, card(2) / 2),
            ],
            0,
            last,
        ));
    }
    qs
}

fn configs() -> Vec<AbConfig> {
    vec![
        AbConfig::new(Level::PerAttribute).with_alpha(8),
        AbConfig::new(Level::PerDataset).with_alpha(8),
        AbConfig::new(Level::PerColumn).with_alpha(8),
        AbConfig::new(Level::PerAttribute)
            .with_alpha(8)
            .with_family(HashFamily::DoubleHashing),
        AbConfig::new(Level::PerAttribute)
            .with_alpha(16)
            .with_k(11)
            .with_family(HashFamily::Sha1Split),
        AbConfig::new(Level::PerDataset)
            .with_alpha(8)
            .with_family(HashFamily::ColumnGroup { num_columns: 1 }),
    ]
}

#[test]
fn rect_results_and_probe_accounting_identical() {
    for (d, table) in datasets().iter().enumerate() {
        for (c, cfg) in configs().iter().enumerate() {
            let idx = AbIndex::build(table, cfg);
            for (qi, q) in queries(table).iter().enumerate() {
                let (scalar_rows, scalar_stats) = idx
                    .try_execute_rect_with_stats_kernel(q, KernelKind::Scalar)
                    .unwrap();
                for opts in kernel_matrix() {
                    let (rows, stats) = idx.try_execute_rect_with_stats_opts(q, opts).unwrap();
                    let ctx = format!("dataset {d}, config {c}, query {qi}, kernel {opts:?}");
                    assert_eq!(scalar_rows, rows, "rows diverged: {ctx}");
                    assert_eq!(
                        scalar_stats.cells_probed, stats.cells_probed,
                        "cells_probed diverged: {ctx}"
                    );
                    assert_eq!(
                        scalar_stats.bits_read, stats.bits_read,
                        "bits_read diverged: {ctx}"
                    );
                    assert_eq!(
                        scalar_stats.rows_matched, stats.rows_matched,
                        "rows_matched diverged: {ctx}"
                    );
                }
            }
        }
    }
}

#[test]
fn cell_subset_verdicts_identical() {
    for table in &datasets() {
        for cfg in &configs() {
            let idx = AbIndex::build(table, cfg);
            // A mix of genuinely-set cells and (probably) absent ones,
            // 3 batches plus a ragged tail.
            let cells: Vec<Cell> = (0..200)
                .map(|i| {
                    let row = (i * 37) % table.num_rows();
                    let attr = i % table.columns().len();
                    let bin = if i % 3 == 0 {
                        table.column(attr).bins[row]
                    } else {
                        (i as u32 * 7) % table.column(attr).cardinality
                    };
                    Cell::new(row, attr, bin)
                })
                .collect();
            let scalar = idx.retrieve_cells_with_kernel(&cells, KernelKind::Scalar);
            for opts in kernel_matrix() {
                let waves = idx.retrieve_cells_with_opts(&cells, opts);
                assert_eq!(scalar, waves, "verdicts diverged on {opts:?}");
            }
        }
    }
}

/// The per-chunk `CellPlan` dedupe must not change verdicts even when
/// a chunk is dominated by one (attribute, bin) pair — the sharpest
/// plan-sharing shape.
#[test]
fn cell_subset_with_heavy_duplicates_identical() {
    let table = &datasets()[0];
    let idx = AbIndex::build(table, &AbConfig::new(Level::PerAttribute).with_alpha(8));
    // 300 cells over just 4 distinct (attribute, bin) pairs, rows
    // varying — every chunk dedupes most of its plans.
    let cells: Vec<Cell> = (0..300)
        .map(|i| {
            let row = (i * 13) % table.num_rows();
            let attr = i % 2;
            let bin = ((i / 2) % 2) as u32 % table.column(attr).cardinality;
            Cell::new(row, attr, bin)
        })
        .collect();
    let scalar = idx.retrieve_cells_with_kernel(&cells, KernelKind::Scalar);
    for opts in kernel_matrix() {
        assert_eq!(
            scalar,
            idx.retrieve_cells_with_opts(&cells, opts),
            "verdicts diverged on {opts:?}"
        );
    }
}

/// The batched path must keep the no-false-negative contract on its
/// own terms too: every genuinely set cell of the table answers true.
#[test]
fn batched_kernel_never_misses_set_cells() {
    let table = &datasets()[0];
    let idx = AbIndex::build(table, &AbConfig::new(Level::PerAttribute).with_alpha(4));
    let cells: Vec<Cell> = (0..table.num_rows())
        .flat_map(|r| (0..table.columns().len()).map(move |a| (r, a)))
        .map(|(r, a)| Cell::new(r, a, table.column(a).bins[r]))
        .collect();
    assert!(
        idx.retrieve_cells_with_kernel(&cells, KernelKind::Batched)
            .iter()
            .all(|&b| b),
        "batched kernel produced a false negative"
    );
}

/// Degenerate row intervals (lo > hi) return empty results on both
/// kernels without probing.
#[test]
fn empty_row_interval_matches() {
    let table = &datasets()[1];
    let idx = AbIndex::build(table, &AbConfig::new(Level::PerAttribute).with_alpha(8));
    // `RectQuery::new` rejects lo > hi; build the degenerate interval
    // directly to exercise the kernels' own guard.
    let q = RectQuery {
        ranges: vec![AttrRange::new(0, 0, 3)],
        row_lo: 100,
        row_hi: 50,
    };
    for kernel in [KernelKind::Scalar, KernelKind::Batched, KernelKind::Simd] {
        let (rows, stats) = idx.try_execute_rect_with_stats_kernel(&q, kernel).unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.cells_probed, 0);
        assert_eq!(stats.bits_read, 0);
    }
}

/// Pyramid geometries scaled to the test datasets (777–4096 rows):
/// a single fine level, and a two-level coarse-over-fine stack.
fn hier_configs() -> Vec<HierConfig> {
    vec![
        HierConfig {
            levels: vec![HierLevelSpec {
                row_span: 8,
                bin_group: 2,
            }],
        },
        HierConfig {
            levels: vec![
                HierLevelSpec {
                    row_span: 16,
                    bin_group: 2,
                },
                HierLevelSpec {
                    row_span: 64,
                    bin_group: 4,
                },
            ],
        },
    ]
}

/// The hier on/off axis over the full matrix: with a pyramid attached
/// and `HierMode::Force`, every kernel must return the exact flat rows
/// (pruning is allowed to skip work, never to change the answer), all
/// kernels must agree on stats with each other, and `cells_probed`
/// must never exceed the flat scalar reference — the pyramid's own
/// level-AB probes are bookkept separately and pruned intervals are a
/// subset of the original row interval.
#[test]
fn hier_pruning_is_bit_identical_and_never_probes_more() {
    for (d, table) in datasets().iter().enumerate() {
        for (c, cfg) in configs().iter().enumerate() {
            for (h, hcfg) in hier_configs().iter().enumerate() {
                let mut idx = AbIndex::build(table, cfg);
                idx.ensure_hier(hcfg);
                for (qi, q) in queries(table).iter().enumerate() {
                    let (flat_rows, flat_stats) = idx
                        .try_execute_rect_with_stats_kernel(q, KernelKind::Scalar)
                        .unwrap();
                    // Hier reference: scalar under Force. All other
                    // kernels must match it bit-for-bit and stat-for-stat.
                    let href = KernelOpts::new(KernelKind::Scalar).with_hier(HierMode::Force);
                    let (href_rows, href_stats) =
                        idx.try_execute_rect_with_stats_opts(q, href).unwrap();
                    let ctx = format!("dataset {d}, config {c}, hier {h}, query {qi}");
                    assert_eq!(
                        flat_rows, href_rows,
                        "hier scalar diverged from flat: {ctx}"
                    );
                    assert!(
                        href_stats.cells_probed <= flat_stats.cells_probed,
                        "hier probed more cells than flat ({} > {}): {ctx}",
                        href_stats.cells_probed,
                        flat_stats.cells_probed
                    );
                    assert_eq!(
                        href_stats.rows_matched, flat_stats.rows_matched,
                        "rows_matched diverged under hier: {ctx}"
                    );
                    for base in kernel_matrix() {
                        let opts = base.with_hier(HierMode::Force);
                        let (rows, stats) = idx.try_execute_rect_with_stats_opts(q, opts).unwrap();
                        let kctx = format!("{ctx}, kernel {opts:?}");
                        assert_eq!(flat_rows, rows, "rows diverged under hier: {kctx}");
                        assert_eq!(
                            href_stats.cells_probed, stats.cells_probed,
                            "cells_probed diverged across hier kernels: {kctx}"
                        );
                        assert_eq!(
                            href_stats.bits_read, stats.bits_read,
                            "bits_read diverged across hier kernels: {kctx}"
                        );
                        assert_eq!(
                            href_stats.regions_pruned, stats.regions_pruned,
                            "regions_pruned diverged across hier kernels: {kctx}"
                        );
                        assert_eq!(
                            href_stats.rows_skipped, stats.rows_skipped,
                            "rows_skipped diverged across hier kernels: {kctx}"
                        );
                    }
                    // With the pyramid attached but HierMode::Off, the
                    // flat path must be untouched — identical stats, no
                    // pruning accounting.
                    let off = KernelOpts::new(KernelKind::Scalar).with_hier(HierMode::Off);
                    let (off_rows, off_stats) =
                        idx.try_execute_rect_with_stats_opts(q, off).unwrap();
                    assert_eq!(flat_rows, off_rows, "HierMode::Off changed rows: {ctx}");
                    assert_eq!(
                        flat_stats.cells_probed, off_stats.cells_probed,
                        "HierMode::Off changed probe accounting: {ctx}"
                    );
                    assert_eq!(off_stats.regions_pruned, 0, "Off reported pruning: {ctx}");
                }
            }
        }
    }
}

/// The hybrid exact-tier axis over the full matrix. With every bin
/// exact-backed (`min_density: 0.0` lets the cost model back them
/// all) the hybrid answer for any rect IS the ground truth: a subset
/// of the flat answer (it only removes the AB's false positives), a
/// superset of the true rows (100 % recall is non-negotiable), and
/// `fp_rows_eliminated` must account for the difference exactly.
/// Every kernel × batch policy × hier on/off must agree, and
/// `HybridMode::Off` must leave the flat path byte-for-byte untouched
/// — same stats, zero hybrid accounting.
#[test]
fn hybrid_tier_is_exact_for_backed_bins_and_never_drops_rows() {
    let mut eliminated_total = 0u64;
    for (d, table) in datasets().iter().enumerate() {
        for (c, cfg) in configs().iter().enumerate() {
            let mut idx = AbIndex::build(table, cfg);
            idx.ensure_hybrid(
                table,
                &HybridConfig {
                    min_density: 0.0,
                    ..HybridConfig::default()
                },
            );
            idx.ensure_hier(&hier_configs()[0]);
            for (qi, q) in queries(table).iter().enumerate() {
                let ctx = format!("dataset {d}, config {c}, query {qi}");
                // Ground truth straight off the binned table.
                let truth: Vec<usize> = (q.row_lo..=q.row_hi.min(table.num_rows() - 1))
                    .filter(|&r| {
                        q.ranges.iter().all(|rg| {
                            let b = table.column(rg.attribute).bins[r];
                            rg.lo <= b && b <= rg.hi
                        })
                    })
                    .collect();
                let (flat_rows, flat_stats) = idx
                    .try_execute_rect_with_stats_kernel(q, KernelKind::Scalar)
                    .unwrap();
                let flat_set: std::collections::HashSet<usize> =
                    flat_rows.iter().copied().collect();
                let href = KernelOpts::new(KernelKind::Scalar).with_hybrid(HybridMode::Force);
                let (href_rows, href_stats) =
                    idx.try_execute_rect_with_stats_opts(q, href).unwrap();
                assert_eq!(
                    href_rows, truth,
                    "fully-backed hybrid answer is not the ground truth: {ctx}"
                );
                assert!(
                    href_rows.iter().all(|r| flat_set.contains(r)),
                    "hybrid returned a row flat did not: {ctx}"
                );
                assert_eq!(
                    (flat_rows.len() - href_rows.len()) as u64,
                    href_stats.fp_rows_eliminated,
                    "fp_rows_eliminated does not account for flat minus hybrid: {ctx}"
                );
                eliminated_total += href_stats.fp_rows_eliminated;
                for base in kernel_matrix() {
                    for hier in [HierMode::Off, HierMode::Force] {
                        let opts = base.with_hybrid(HybridMode::Force).with_hier(hier);
                        let (rows, stats) = idx.try_execute_rect_with_stats_opts(q, opts).unwrap();
                        let kctx = format!("{ctx}, kernel {opts:?}");
                        assert_eq!(truth, rows, "hybrid rows diverged from truth: {kctx}");
                        // Under hier, pruned regions never produce flat
                        // false positives to eliminate, so the count may
                        // only shrink — never grow, never go negative.
                        assert!(
                            stats.fp_rows_eliminated <= href_stats.fp_rows_eliminated,
                            "hier+hybrid eliminated more fp rows than hybrid alone: {kctx}"
                        );
                    }
                }
                // HybridMode::Off with the tier attached: the flat path
                // must be untouched — identical rows and probe stats,
                // zero hybrid accounting.
                let off = KernelOpts::new(KernelKind::Scalar).with_hybrid(HybridMode::Off);
                let (off_rows, off_stats) = idx.try_execute_rect_with_stats_opts(q, off).unwrap();
                assert_eq!(flat_rows, off_rows, "HybridMode::Off changed rows: {ctx}");
                assert_eq!(
                    flat_stats.cells_probed, off_stats.cells_probed,
                    "HybridMode::Off changed probe accounting: {ctx}"
                );
                assert_eq!(
                    off_stats.fp_rows_eliminated, 0,
                    "Off reported fp elimination: {ctx}"
                );
            }
        }
    }
    // The suite crosses enough α=8 configs that the AB is guaranteed
    // to produce false positives somewhere; if the tier never
    // eliminated any, the companion containers are broken.
    assert!(
        eliminated_total > 0,
        "no false positives eliminated across the whole matrix"
    );
}

/// `kernel.prefetches` must report only prefetch instructions that
/// actually executed: on builds where the prefetch is a no-op
/// (`PREFETCH_ACTIVE == false`) the counter stays frozen across both
/// query paths; on active builds it advances by exactly `bits_read`
/// (each issued probe position prefetches its AB word once).
#[test]
fn prefetch_counter_counts_only_real_prefetches() {
    let table = &datasets()[0];
    let idx = AbIndex::build(table, &AbConfig::new(Level::PerAttribute).with_alpha(8));
    let q = RectQuery::new(
        vec![AttrRange::new(0, 0, table.column(0).cardinality / 2)],
        0,
        table.num_rows() - 1,
    );
    for opts in kernel_matrix() {
        let before = obs::global().snapshot().counter("kernel.prefetches");
        let (_, stats) = idx.try_execute_rect_with_stats_opts(&q, opts).unwrap();
        let cells: Vec<Cell> = (0..100)
            .map(|i| Cell::new((i * 7) % table.num_rows(), 0, 0))
            .collect();
        let verdicts = idx.retrieve_cells_with_opts(&cells, opts);
        let after = obs::global().snapshot().counter("kernel.prefetches");
        if ab::PREFETCH_ACTIVE {
            assert!(
                after - before >= stats.bits_read as u64,
                "active build under-reported prefetches on {opts:?}: {before} -> {after}"
            );
        } else {
            assert_eq!(
                before, after,
                "no-op build reported phantom prefetches on {opts:?}"
            );
        }
        assert_eq!(verdicts.len(), cells.len());
    }
}
