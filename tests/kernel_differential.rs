//! Scalar ↔ batched probe-kernel differential tests.
//!
//! The batched kernel (DESIGN.md §13) restructures the Figure 5/7
//! probe loops for memory-level parallelism but must not change a
//! single observable: rect results must be bit-identical and the
//! `QueryStats` probe accounting (`cells_probed`, `bits_read`,
//! `rows_matched`) must match the scalar reference loop exactly —
//! this is the guard against double-counting `bits_read` and, more
//! importantly, against any probe-sequence divergence that would show
//! up as a false negative.
//!
//! Run with and without `--features prefetch`; CI's `kernel-smoke` job
//! does both.

use ab::{AbConfig, AbIndex, Cell, KernelKind, Level};
use bitmap::{AttrRange, BinnedTable, RectQuery};
use datagen::small_uniform;
use hashkit::HashFamily;

/// The 3 seeded datasets the satellite task asks for: different row
/// counts (off multiples of the 64-row batch), attribute counts, and
/// cardinalities.
fn datasets() -> Vec<BinnedTable> {
    vec![
        small_uniform(1931, 3, 12, 7).binned,
        small_uniform(4096, 2, 8, 99).binned,
        small_uniform(777, 4, 20, 2024).binned,
    ]
}

/// A workload of rect queries exercising every short-circuit shape:
/// multi-range ANDs, single bins, full-table spans, sub-64-row spans,
/// an empty range list, and an empty row interval.
fn queries(table: &BinnedTable) -> Vec<RectQuery> {
    let last = table.num_rows() - 1;
    let card = |a: usize| table.column(a).cardinality;
    let mut qs = vec![
        RectQuery::new(vec![AttrRange::new(0, 0, card(0) / 2)], 0, last),
        RectQuery::new(
            vec![
                AttrRange::new(0, 1, card(0) - 1),
                AttrRange::new(1, 0, card(1) / 3),
            ],
            last / 4,
            3 * last / 4,
        ),
        RectQuery::new(vec![AttrRange::new(1, 2, 2)], 0, last),
        RectQuery::new(vec![AttrRange::new(0, 0, card(0) - 1)], 17, 29),
        RectQuery::new(vec![], 5, last.min(500)),
        RectQuery::new(vec![AttrRange::new(0, 0, 1)], 63, 63),
    ];
    if table.columns().len() > 2 {
        qs.push(RectQuery::new(
            vec![
                AttrRange::new(0, 0, card(0) - 1),
                AttrRange::new(1, 1, 1),
                AttrRange::new(2, 0, card(2) / 2),
            ],
            0,
            last,
        ));
    }
    qs
}

fn configs() -> Vec<AbConfig> {
    vec![
        AbConfig::new(Level::PerAttribute).with_alpha(8),
        AbConfig::new(Level::PerDataset).with_alpha(8),
        AbConfig::new(Level::PerColumn).with_alpha(8),
        AbConfig::new(Level::PerAttribute)
            .with_alpha(8)
            .with_family(HashFamily::DoubleHashing),
        AbConfig::new(Level::PerAttribute)
            .with_alpha(16)
            .with_k(11)
            .with_family(HashFamily::Sha1Split),
        AbConfig::new(Level::PerDataset)
            .with_alpha(8)
            .with_family(HashFamily::ColumnGroup { num_columns: 1 }),
    ]
}

#[test]
fn rect_results_and_probe_accounting_identical() {
    for (d, table) in datasets().iter().enumerate() {
        for (c, cfg) in configs().iter().enumerate() {
            let idx = AbIndex::build(table, cfg);
            for (qi, q) in queries(table).iter().enumerate() {
                let (scalar_rows, scalar_stats) = idx
                    .try_execute_rect_with_stats_kernel(q, KernelKind::Scalar)
                    .unwrap();
                let (batched_rows, batched_stats) = idx
                    .try_execute_rect_with_stats_kernel(q, KernelKind::Batched)
                    .unwrap();
                let ctx = format!("dataset {d}, config {c}, query {qi}");
                assert_eq!(scalar_rows, batched_rows, "rows diverged: {ctx}");
                assert_eq!(
                    scalar_stats.cells_probed, batched_stats.cells_probed,
                    "cells_probed diverged: {ctx}"
                );
                assert_eq!(
                    scalar_stats.bits_read, batched_stats.bits_read,
                    "bits_read diverged: {ctx}"
                );
                assert_eq!(
                    scalar_stats.rows_matched, batched_stats.rows_matched,
                    "rows_matched diverged: {ctx}"
                );
            }
        }
    }
}

#[test]
fn cell_subset_verdicts_identical() {
    for table in &datasets() {
        for cfg in &configs() {
            let idx = AbIndex::build(table, cfg);
            // A mix of genuinely-set cells and (probably) absent ones,
            // 3 batches plus a ragged tail.
            let cells: Vec<Cell> = (0..200)
                .map(|i| {
                    let row = (i * 37) % table.num_rows();
                    let attr = i % table.columns().len();
                    let bin = if i % 3 == 0 {
                        table.column(attr).bins[row]
                    } else {
                        (i as u32 * 7) % table.column(attr).cardinality
                    };
                    Cell::new(row, attr, bin)
                })
                .collect();
            let scalar = idx.retrieve_cells_with_kernel(&cells, KernelKind::Scalar);
            let batched = idx.retrieve_cells_with_kernel(&cells, KernelKind::Batched);
            assert_eq!(scalar, batched);
        }
    }
}

/// The batched path must keep the no-false-negative contract on its
/// own terms too: every genuinely set cell of the table answers true.
#[test]
fn batched_kernel_never_misses_set_cells() {
    let table = &datasets()[0];
    let idx = AbIndex::build(table, &AbConfig::new(Level::PerAttribute).with_alpha(4));
    let cells: Vec<Cell> = (0..table.num_rows())
        .flat_map(|r| (0..table.columns().len()).map(move |a| (r, a)))
        .map(|(r, a)| Cell::new(r, a, table.column(a).bins[r]))
        .collect();
    assert!(
        idx.retrieve_cells_with_kernel(&cells, KernelKind::Batched)
            .iter()
            .all(|&b| b),
        "batched kernel produced a false negative"
    );
}

/// Degenerate row intervals (lo > hi) return empty results on both
/// kernels without probing.
#[test]
fn empty_row_interval_matches() {
    let table = &datasets()[1];
    let idx = AbIndex::build(table, &AbConfig::new(Level::PerAttribute).with_alpha(8));
    // `RectQuery::new` rejects lo > hi; build the degenerate interval
    // directly to exercise the kernels' own guard.
    let q = RectQuery {
        ranges: vec![AttrRange::new(0, 0, 3)],
        row_lo: 100,
        row_hi: 50,
    };
    for kernel in [KernelKind::Scalar, KernelKind::Batched] {
        let (rows, stats) = idx.try_execute_rect_with_stats_kernel(&q, kernel).unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.cells_probed, 0);
        assert_eq!(stats.bits_read, 0);
    }
}
