//! Integration: row reordering (paper §2.2.1 background) really does
//! shrink WAH-compressed indexes, and reordered indexes answer the
//! same queries after row-id remapping.

use bitmap::{
    apply_permutation, gray_order, lexicographic_order, total_transitions, AttrRange, BitmapIndex,
    Encoding, RectQuery,
};
use datagen::small_uniform;
use wah::WahIndex;

#[test]
fn reordering_shrinks_wah_index() {
    let ds = small_uniform(20_000, 3, 10, 77);
    let base = WahIndex::build(&ds.binned).size_bytes();
    let lex = WahIndex::build(&apply_permutation(
        &ds.binned,
        &lexicographic_order(&ds.binned),
    ))
    .size_bytes();
    let gray =
        WahIndex::build(&apply_permutation(&ds.binned, &gray_order(&ds.binned))).size_bytes();
    assert!(lex < base, "lex {lex} >= base {base}");
    assert!(gray < base, "gray {gray} >= base {base}");
    // The first attribute alone compresses to almost nothing after
    // sorting; overall the index must shrink noticeably.
    assert!((lex as f64) < base as f64 * 0.9, "lex only {lex} vs {base}");
}

#[test]
fn gray_no_worse_than_lex_on_transitions() {
    let ds = small_uniform(10_000, 3, 6, 78);
    let lex = total_transitions(&apply_permutation(
        &ds.binned,
        &lexicographic_order(&ds.binned),
    ));
    let gray = total_transitions(&apply_permutation(&ds.binned, &gray_order(&ds.binned)));
    assert!(gray <= lex, "gray {gray} > lex {lex}");
}

#[test]
fn reordered_index_answers_remap_correctly() {
    let ds = small_uniform(3_000, 2, 8, 79);
    let perm = gray_order(&ds.binned);
    let reordered = apply_permutation(&ds.binned, &perm);

    let original = BitmapIndex::build(&ds.binned, Encoding::Equality);
    let shuffled = BitmapIndex::build(&reordered, Encoding::Equality);

    // A pure attribute query (full row range): the answer sets must be
    // the same rows modulo the permutation.
    let q = RectQuery::new(vec![AttrRange::new(0, 2, 4)], 0, 2_999);
    let want: std::collections::BTreeSet<usize> = original.evaluate_rows(&q).into_iter().collect();
    let got: std::collections::BTreeSet<usize> = shuffled
        .evaluate_rows(&q)
        .into_iter()
        .map(|new_row| perm[new_row] as usize)
        .collect();
    assert_eq!(got, want);
}

#[test]
fn ab_on_reordered_table_keeps_full_recall() {
    use ab::{AbConfig, AbIndex, Level};
    let ds = small_uniform(3_000, 2, 8, 80);
    let reordered = apply_permutation(&ds.binned, &gray_order(&ds.binned));
    let exact = BitmapIndex::build(&reordered, Encoding::Equality);
    let idx = AbIndex::build(
        &reordered,
        &AbConfig::new(Level::PerAttribute).with_alpha(8),
    );
    let q = RectQuery::new(vec![AttrRange::new(1, 0, 3)], 500, 2_500);
    let approx = idx.execute_rect(&q);
    for r in exact.evaluate_rows(&q) {
        assert!(approx.contains(&r));
    }
}
