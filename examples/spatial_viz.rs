//! Scientific-visualization scenario from the paper's introduction:
//! points on a grid, physically ordered by a space-filling curve, with
//! region queries answered in O(points-in-region) instead of O(N).
//!
//! "We can map all the points in the query to their index and evaluate
//! the query conditions over the resulting rows. While many other
//! approaches, including compressed bitmaps, compute the answer in
//! O(N) time … we want to compute the answers in the optimal O(c)
//! time, where c is the number of points in the region queried."
//!
//! Run with: `cargo run --release --example spatial_viz`

use ab::{AbConfig, AbIndex, Cell, Level};
use bitmap::{BinnedTable, Binner, Column, EquiDepth, Table};
use datagen::zorder;
use rand::Rng;
use std::time::Instant;

fn main() {
    // A 256×256 simulation grid; each point carries a scalar field
    // value (e.g. temperature). Rows are ordered by Z-order index, so
    // the row id IS the Morton code.
    let side = 256u32;
    let n = (side * side) as usize;
    let mut r = datagen::rng(7);
    let field: Vec<f64> = (0..n)
        .map(|row| {
            let (x, y) = zorder::decode2(row as u64);
            // A smooth bump plus noise.
            let dx = x as f64 - 128.0;
            let dy = y as f64 - 128.0;
            (-(dx * dx + dy * dy) / 4000.0).exp() * 100.0 + r.gen::<f64>() * 5.0
        })
        .collect();
    let table = Table::new(vec![Column::new("field", field)]);
    let binner = EquiDepth::new(16);
    let binned = BinnedTable::new(vec![binner.bin(table.column(0))]);

    let ab = AbIndex::build(&binned, &AbConfig::new(Level::PerColumn).with_alpha(16));
    println!(
        "grid {side}x{side} ({n} points), AB index {} bytes",
        ab.size_bytes()
    );

    // The user zooms into a window around the bump and asks: which
    // points inside [96,160]x[96,160] have field values in the top
    // bin? Only the bump's core qualifies.
    let t0 = Instant::now();
    let region_rows = zorder::region_rows2(96, 160, 96, 160);
    let cells: Vec<Cell> = region_rows
        .iter()
        .map(|&row| Cell::new(row as usize, 0, 15))
        .collect();
    let hits = ab.retrieve_cells(&cells);
    let ab_time = t0.elapsed();

    let found: Vec<u64> = region_rows
        .iter()
        .zip(&hits)
        .filter(|&(_, &h)| h)
        .map(|(&row, _)| row)
        .collect();
    println!(
        "AB: probed {} cells in {ab_time:?}, {} candidate hot points",
        cells.len(),
        found.len()
    );

    // Ground truth by scanning the full grid (what an O(N) plan does).
    let t1 = Instant::now();
    let truth: Vec<u64> = (0..n as u64)
        .filter(|&row| {
            let (x, y) = zorder::decode2(row);
            (96..=160).contains(&x)
                && (96..=160).contains(&y)
                && binned.column(0).bins[row as usize] == 15
        })
        .collect();
    let scan_time = t1.elapsed();
    println!(
        "full scan: {} true hot points in {scan_time:?} (O(N) baseline)",
        truth.len()
    );

    // No false negatives; report precision.
    for t in &truth {
        assert!(found.contains(t), "AB missed point {t}");
    }
    println!(
        "precision {:.3}, recall 1.000",
        truth.len() as f64 / found.len().max(1) as f64
    );

    // Render a coarse ASCII picture of the recovered region.
    println!("\ncandidate hot points (65x65 zoom, '#' = hit):");
    for y in (96..=160).step_by(4) {
        let mut line = String::new();
        for x in (96..=160).step_by(4) {
            let row = zorder::encode2(x, y);
            line.push(if found.binary_search(&row).is_ok() {
                '#'
            } else {
                '.'
            });
        }
        println!("{line}");
    }
}
