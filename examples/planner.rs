//! Cost-based engine selection: calibrate the AB-vs-WAH crossover on
//! your own data and let the planner route each query.
//!
//! Figure 14 of the paper fixes the crossover at "around 15% of the
//! rows" for its 2006 testbed; on different hardware the constant
//! moves, so this library measures it instead.
//!
//! Run with: `cargo run --release --example planner`

use ab::planner::{calibrate, plan, wah_like::WahLike, Engine};
use ab::{AbConfig, AbIndex, Level};
use bitmap::RectQuery;
use datagen::{generate, small_uniform, QueryGenParams};
use wah::WahIndex;

fn main() {
    let ds = small_uniform(100_000, 2, 50, 2006);
    let n = ds.rows();
    println!("data: {} rows x {} attributes", n, ds.attributes());

    let ab = AbIndex::build(&ds.binned, &AbConfig::new(Level::PerColumn).with_alpha(16));
    let wah = WahIndex::build(&ds.binned);
    println!(
        "index sizes: AB {} bytes, WAH {} bytes",
        ab.size_bytes(),
        wah.size_bytes()
    );

    // Calibrate on a handful of sampled queries.
    let params = QueryGenParams::paper_default(&ds.binned, 1_000, 7);
    let samples = generate(&ds.binned, &params);
    let wah_eval = WahLike::new(|q: &RectQuery| {
        // WAH pays the full-column plan regardless of the row range.
        let full = RectQuery::new(q.ranges.clone(), 0, n - 1);
        std::hint::black_box(wah.evaluate(&full));
    });
    let model = calibrate(&ab, &wah_eval, &samples[..10]);
    println!(
        "calibrated model: WAH {:.4} ms/query (sd {:.4}), AB {:.6} ms per row x attribute (sd {:.6})",
        model.wah_ms_per_query, model.wah_ms_stddev, model.ab_ms_per_row_attr, model.ab_ms_stddev
    );
    let (lo, mid, hi) = model.crossover_rows_spread(2);
    println!(
        "=> crossover for 2-attribute queries: ~{mid} rows (~{:.1}% of the table), \
         spread [{lo}, {hi}] from per-sample timing dispersion",
        100.0 * mid as f64 / n as f64
    );
    if let Some(h) = obs::global().snapshot().histogram("planner.residual_us") {
        println!(
            "model residual |actual - estimate|: p50 {} us, p90 {} us over {} samples",
            h.p50, h.p90, h.count
        );
    }

    // Route a spread of query sizes.
    println!("\n{:>10}  {:>8}  routed to", "rows", "% of N");
    for rows in [50usize, 500, 2_000, 10_000, 50_000, n] {
        let q_params = QueryGenParams::paper_default(&ds.binned, rows, 11);
        let q = &generate(&ds.binned, &q_params)[0];
        let engine = plan(&model, q);
        println!(
            "{:>10}  {:>7.2}%  {}",
            q.num_rows(),
            100.0 * q.num_rows() as f64 / n as f64,
            match engine {
                Engine::Ab => "AB  (O(rows), approximate, 100% recall)",
                Engine::Wah => "WAH (flat full-column cost, exact)",
            }
        );
    }
}
