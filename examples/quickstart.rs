//! Quickstart: build an Approximate Bitmap index over a small table,
//! run an approximate query, then get the exact answer with the
//! second-step pruning.
//!
//! Run with: `cargo run --release --example quickstart`

use ab::{AbConfig, AbPipeline, Level};
use bitmap::{AttrRange, Column, RectQuery, Table};

fn main() {
    // Six years of daily measurements: temperature and humidity,
    // physically ordered by date.
    let days = 2192usize;
    let table = Table::new(vec![
        Column::new(
            "temperature",
            (0..days)
                .map(|d| 15.0 + 10.0 * (d as f64 * std::f64::consts::TAU / 365.0).sin())
                .collect(),
        ),
        Column::new(
            "humidity",
            (0..days).map(|d| 40.0 + ((d * 13) % 50) as f64).collect(),
        ),
    ]);

    // Bin each attribute into 32 equi-depth bins, build a per-attribute
    // AB with 16 bits per set bit, and keep the exact index around for
    // pruning.
    let pipeline = AbPipeline::builder(&table)
        .bins(32)
        .config(AbConfig::new(Level::PerAttribute).with_alpha(16))
        .keep_exact(true)
        .build();

    println!(
        "AB index: {} ABs, {} bytes total (vs {} bytes exact bitmaps)",
        pipeline.ab.abs().len(),
        pipeline.ab.size_bytes(),
        pipeline.exact.as_ref().unwrap().size_bytes(),
    );

    // Query over the last year only: days with temperature in the top
    // quarter of the distribution (summer) AND humidity in the lower
    // half.
    let query = RectQuery::new(
        vec![AttrRange::new(0, 24, 31), AttrRange::new(1, 0, 15)],
        days - 365,
        days - 1,
    );

    let approximate = pipeline.query_approx(&query);
    let exact = pipeline.query_exact(&query);

    println!(
        "approximate answer ({} rows): {approximate:?}",
        approximate.len()
    );
    println!("exact answer       ({} rows): {exact:?}", exact.len());

    // The AB never misses a true match.
    assert!(exact.iter().all(|r| approximate.contains(r)));
    let precision = exact.len() as f64 / approximate.len().max(1) as f64;
    println!("precision of the approximate pass: {precision:.3} (recall is always 1.0)");
}
