//! Row-reordering preprocessing (paper §2.2.1): improve WAH
//! compression by physically reordering the rows — lexicographic sort
//! vs the Gray-code heuristic of Pinar, Tao & Ferhatosmanoglu — and
//! see how the choice interacts with the AB (whose size is *immune* to
//! row order: it depends only on the number of set bits).
//!
//! Run with: `cargo run --release --example reordering`

use ab::{AbConfig, AbIndex, Level};
use bitmap::{apply_permutation, gray_order, lexicographic_order, total_transitions};
use datagen::small_uniform;
use wah::WahIndex;

fn main() {
    let ds = small_uniform(50_000, 3, 12, 2006);
    println!(
        "data: {} rows x {} attributes, {} bitmap columns\n",
        ds.rows(),
        ds.attributes(),
        ds.total_bitmaps()
    );

    let orders: [(&str, Option<bitmap::reorder::Permutation>); 3] = [
        ("original order", None),
        ("lexicographic sort", Some(lexicographic_order(&ds.binned))),
        ("gray-code order", Some(gray_order(&ds.binned))),
    ];

    println!(
        "{:<20} {:>12} {:>12} {:>12}",
        "row order", "transitions", "WAH bytes", "AB bytes"
    );
    for (name, perm) in &orders {
        let table = match perm {
            None => ds.binned.clone(),
            Some(p) => apply_permutation(&ds.binned, p),
        };
        let wah = WahIndex::build(&table);
        let ab = AbIndex::build(&table, &AbConfig::new(Level::PerAttribute).with_alpha(8));
        println!(
            "{:<20} {:>12} {:>12} {:>12}",
            name,
            total_transitions(&table),
            wah.size_bytes(),
            ab.size_bytes(),
        );
    }

    println!(
        "\nWAH shrinks with better ordering (fewer bit transitions = longer \
         fills);\nthe AB's size never moves — hashed set bits don't care \
         where the rows sit.\nThat is the trade: WAH + reordering wins on \
         space for full scans; the AB\nkeeps O(1) direct access regardless \
         of physical order."
    );
}
