//! Parameter tuning and persistence: the two sizing modes of the
//! paper's contribution 3, the level trade-off of §4.2, and saving /
//! loading the built index.
//!
//! Run with: `cargo run --release --example tuning`

use ab::{AbConfig, AbIndex, Level, Sizing};
use bitmap::{BitmapIndex, Encoding};
use datagen::small_uniform;

fn main() {
    let ds = small_uniform(50_000, 4, 20, 11);
    let exact = BitmapIndex::build(&ds.binned, Encoding::Equality);
    let queries = {
        let params = datagen::QueryGenParams::paper_default(&ds.binned, 2_000, 3);
        datagen::generate(&ds.binned, &params)
    };
    let precision = |idx: &AbIndex| {
        let mut total = 0.0;
        for q in &queries {
            let approx = idx.execute_rect(q);
            let want = exact.evaluate_rows(q);
            let stats = ab::PrecisionStats::compare(&approx, &want);
            assert_eq!(stats.false_negatives, 0);
            total += stats.precision();
        }
        total / queries.len() as f64
    };

    // Mode 1: cap the memory, take the best precision that fits.
    println!("-- sizing by maximum size (per attribute) --");
    for m_max in [17u32, 19, 21] {
        let cfg = AbConfig {
            sizing: Sizing::MaxBits(m_max),
            ..AbConfig::new(Level::PerAttribute)
        };
        let idx = AbIndex::build(&ds.binned, &cfg);
        println!(
            "  m_max={m_max}: {:>9} bytes total, precision {:.3}",
            idx.size_bytes(),
            precision(&idx)
        );
    }

    // Mode 2: demand a precision, pay the least space. The target is
    // the paper's cell-level precision P = 1 - FP (§4.2); query-level
    // precision compounds over the probed cells, so aim high.
    println!("-- sizing by minimum (cell-level) precision (per attribute) --");
    for p_min in [0.99, 0.999, 0.9999] {
        let cfg = AbConfig {
            sizing: Sizing::MinPrecision(p_min),
            ..AbConfig::new(Level::PerAttribute)
        };
        let idx = AbIndex::build(&ds.binned, &cfg);
        println!(
            "  p_min={p_min}: {:>9} bytes total, measured query precision {:.3}",
            idx.size_bytes(),
            precision(&idx)
        );
    }

    // Level trade-off at fixed α: §4.2's size comparison, measured.
    println!("-- encoding level at alpha=8 --");
    for level in [Level::PerDataset, Level::PerAttribute, Level::PerColumn] {
        let idx = AbIndex::build(&ds.binned, &AbConfig::new(level).with_alpha(8));
        println!(
            "  {level}: {} ABs, {:>9} bytes, precision {:.3}",
            idx.abs().len(),
            idx.size_bytes(),
            precision(&idx)
        );
    }
    // The closed-form chooser agrees with the measured sizes.
    let column_bits: Vec<u64> = ds
        .binned
        .columns()
        .iter()
        .flat_map(|c| c.bin_counts().into_iter().map(|x| x as u64))
        .collect();
    let sizes = ab::level_sizes(ds.rows() as u64, ds.attributes() as u64, &column_bits, 8);
    println!("  closed-form recommendation: {}", ab::choose_level(&sizes));

    // Persistence: ship the index without the data (the paper's
    // privacy-preserving deployment, contribution 6).
    let idx = AbIndex::build(
        &ds.binned,
        &AbConfig::new(Level::PerAttribute).with_alpha(8),
    );
    let bytes = ab::to_bytes(&idx);
    let path = std::env::temp_dir().join("ab_index.bin");
    std::fs::write(&path, &bytes).expect("write index");
    let loaded = ab::from_bytes(&std::fs::read(&path).expect("read index")).expect("decode");
    println!(
        "-- persistence --\n  wrote {} bytes to {}, reloaded: {} ABs, precision {:.3}",
        bytes.len(),
        path.display(),
        loaded.abs().len(),
        precision(&loaded)
    );
}
