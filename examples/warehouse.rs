//! Data-warehouse scenario from the paper's introduction: a sales
//! table physically ordered by date. "A query that asks for the total
//! sales of every Monday for the last 3 months would effectively
//! select twelve rows."
//!
//! With WAH, answering over a handful of rows still costs a scan of
//! the compressed columns; the AB tests exactly the twelve cells.
//!
//! Run with: `cargo run --release --example warehouse`

use ab::{AbConfig, AbIndex, Cell, Level};
use bitmap::{BinnedTable, Column, EquiDepth, Table};
use std::time::Instant;
use wah::WahIndex;

fn main() {
    // Three years of daily sales across 8 stores, ordered by date.
    let days = 3 * 365usize;
    let mut r = datagen::rng(2006);
    let table = Table::new(vec![
        Column::new(
            "sales",
            (0..days)
                .map(|d| {
                    use rand::Rng;
                    // Monday promotions drive Monday sales into the top
                    // of the distribution most weeks.
                    let weekday = d % 7;
                    let base = if weekday == 0 { 1600.0 } else { 900.0 };
                    base + r.gen::<f64>() * 400.0
                })
                .collect(),
        ),
        Column::new("store", (0..days).map(|d| (d % 8) as f64).collect()),
    ]);
    let binned = BinnedTable::from_table(&table, &EquiDepth::new(10));

    let ab = AbIndex::build(&binned, &AbConfig::new(Level::PerAttribute).with_alpha(16));
    let wah = WahIndex::build(&binned);
    println!(
        "index sizes: AB {} bytes, WAH {} bytes",
        ab.size_bytes(),
        wah.size_bytes()
    );

    // "Every Monday of the last 3 months": 12-13 specific row ids.
    let last_day = days - 1;
    let mondays: Vec<usize> = (0..90)
        .map(|back| last_day - back)
        .filter(|d| d % 7 == 0)
        .collect();
    println!("target rows (Mondays, last 90 days): {mondays:?}");

    // Did each of those Mondays land in the top sales decile (bin 9)?
    // Mondays are 1/7 ≈ 14% of days but fill the top ~10% bin, so most
    // probes hit.
    let cells: Vec<Cell> = mondays.iter().map(|&row| Cell::new(row, 0, 9)).collect();

    let t0 = Instant::now();
    let hits = ab.retrieve_cells(&cells);
    let ab_time = t0.elapsed();

    // The WAH plan: materialize the whole top-bin column, then look up
    // the rows — full-column work for a 13-row question.
    let t1 = Instant::now();
    let top_bin = &wah.attributes()[0].bitmaps[9];
    let column = top_bin.to_bitvec();
    let wah_hits: Vec<bool> = mondays.iter().map(|&row| column.get(row)).collect();
    let wah_time = t1.elapsed();

    println!("AB cell probes:  {ab_time:?} -> {hits:?}");
    println!("WAH column scan: {wah_time:?} -> {wah_hits:?}");

    // No false negatives: every true hit is reported by the AB.
    for (i, (&w, &a)) in wah_hits.iter().zip(&hits).enumerate() {
        if w {
            assert!(a, "AB missed a true match at row {}", mondays[i]);
        }
    }
    let fp = hits
        .iter()
        .zip(&wah_hits)
        .filter(|&(&a, &w)| a && !w)
        .count();
    println!("false positives among {} probed cells: {fp}", cells.len());
}
